"""Linter driver: file discovery, suppressions, reports, JSON output.

The linter has two kinds of checks:

* **AST passes** (:mod:`repro.analysis.rules`) run per source file;
* **dynamic checks** -- schema drift (:mod:`repro.analysis.schema`) and
  the engine quiescence contract (:mod:`repro.analysis.contracts`) --
  run once per lint over the live package.

Suppressions: a trailing ``# repro: allow(rule-name)`` comment on the
flagged line keeps the finding in the report but marks it suppressed
(several rules comma-separate; ``allow(*)`` suppresses every rule on the
line).  Suppressed findings never fail the lint.
"""

from __future__ import annotations

import ast
import json
import os
import re

#: Version of the analysis-rule catalogue.  Bump on any rule change; the
#: jobs ledger records it so results vetted by older rules are
#: distinguishable (see repro.jobs.ledger).
ANALYSIS_VERSION = "2"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("rule", "path", "line", "col", "message", "suppressed",
                 "fix")

    def __init__(self, rule, path, line, col, message, suppressed=False,
                 fix=None):
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.suppressed = suppressed
        self.fix = fix          # mechanical-rewrite payload, or None

    @property
    def fixable(self):
        return self.fix is not None

    def location(self):
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "suppressed": self.suppressed, "fixable": self.fixable}

    def render(self):
        mark = " [suppressed]" if self.suppressed else ""
        return f"{self.location()}: {self.rule}: {self.message}{mark}"

    def __repr__(self):
        return f"<Finding {self.rule} {self.location()}>"


class LintContext:
    """Per-file information handed to every AST rule."""

    __slots__ = ("path", "relpath", "source", "lines")

    def __init__(self, path, relpath, source):
        self.path = path
        self.relpath = relpath      # package-relative, "/"-separated
        self.source = source
        self.lines = source.splitlines()


class LintReport:
    """Everything one lint run produced."""

    def __init__(self, findings, files_checked, version=ANALYSIS_VERSION):
        self.findings = findings
        self.files_checked = files_checked
        self.version = version

    @property
    def errors(self):
        """Findings that fail the lint (unsuppressed)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def ok(self):
        return not self.errors

    def counts_by_rule(self):
        counts = {}
        for finding in self.errors:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self):
        return {
            "version": self.version,
            "files_checked": self.files_checked,
            "ok": self.ok,
            "errors": len(self.errors),
            "suppressed": len(self.findings) - len(self.errors),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self):
        lines = [f.render() for f in self.findings]
        suppressed = len(self.findings) - len(self.errors)
        tail = (f"repro lint v{self.version}: {self.files_checked} file(s), "
                f"{len(self.errors)} finding(s)")
        if suppressed:
            tail += f", {suppressed} suppressed"
        lines.append(tail)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Discovery + per-file lint
# ---------------------------------------------------------------------------
def package_root():
    """Directory of the ``repro`` package (the default lint target)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_source_files(paths=None):
    """Yield (path, relpath) for every .py file to lint, sorted."""
    if not paths:
        paths = [package_root()]
    root = package_root()
    seen = set()
    for target in paths:
        target = os.path.abspath(target)
        if os.path.isfile(target):
            files = [target]
        else:
            files = []
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__")
                files.extend(os.path.join(dirpath, name)
                             for name in filenames
                             if name.endswith(".py"))
            files.sort()
        for path in files:
            if path in seen:
                continue
            seen.add(path)
            if path.startswith(root + os.sep):
                relpath = os.path.relpath(path, root).replace(os.sep, "/")
            elif os.path.isdir(target):
                # Outside-package tree (tests/, benchmarks/): keep the
                # target's basename as the prefix so path-keyed
                # exemptions like TIME_EXEMPT_PREFIXES apply.
                rel = os.path.relpath(path, target).replace(os.sep, "/")
                relpath = f"{os.path.basename(target)}/{rel}"
            else:
                relpath = os.path.basename(path)
            yield path, relpath


def _apply_suppressions(findings, context):
    for finding in findings:
        if not (1 <= finding.line <= len(context.lines)):
            continue
        match = _SUPPRESS_RE.search(context.lines[finding.line - 1])
        if match is None:
            continue
        allowed = {name.strip() for name in match.group(1).split(",")}
        if "*" in allowed or finding.rule in allowed:
            finding.suppressed = True


def lint_file(path, relpath=None, rules=None, source=None):
    """Run the AST rules over one file; returns a list of Findings."""
    from .rules import AST_RULES
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    context = LintContext(path, relpath or os.path.basename(path), source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(rule="syntax-error", path=path,
                        line=error.lineno or 0, col=error.offset or 0,
                        message=f"cannot parse: {error.msg}")]
    from .rules import CO_EMITTED
    findings = []
    for name, rule in AST_RULES.items():
        if rules is not None and name not in rules:
            # A pass runs if any rule it co-emits is selected (e.g. the
            # nondet-hash pass also emits nondet-id; the concurrency
            # pass emits race-no-guard and lock-order).
            if not any(co in rules for co in CO_EMITTED.get(name, ())):
                continue
        findings.extend(rule(tree, context))
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    _apply_suppressions(findings, context)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def run_lint(paths=None, rules=None, dynamic=None):
    """Lint ``paths`` (default: the whole ``repro`` package).

    ``rules`` optionally restricts to a set of rule names.  ``dynamic``
    controls the package-level checks (schema drift, engine contracts);
    by default they run exactly when linting the whole package.
    """
    findings = []
    files_checked = 0
    for path, relpath in iter_source_files(paths):
        files_checked += 1
        findings.extend(lint_file(path, relpath, rules=rules))
    if dynamic is None:
        dynamic = not paths
    if dynamic:
        from .contracts import check_engine_contracts
        from .rules import check_time_exemptions
        from .schema import check_config_schema, check_metrics_schema
        for check in (check_config_schema, check_metrics_schema,
                      check_engine_contracts, check_time_exemptions):
            extra = check()
            if rules is not None:
                extra = [f for f in extra if f.rule in rules]
            findings.extend(extra)
    return LintReport(findings, files_checked)
