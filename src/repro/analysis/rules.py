"""AST rule passes of the determinism linter.

Every rule is a function ``(tree, context) -> [Finding]`` registered in
``AST_RULES``.  Rules only *read* the AST; the optional ``fix`` payload
on a finding describes a mechanical rewrite that ``repro lint --fix``
(:mod:`repro.analysis.fixes`) can apply textually.

Rule catalogue
--------------
``nondet-hash``        builtin ``hash()``: salted per process (PYTHONHASHSEED),
                       so any value derived from it differs across runs --
                       the exact bug PR 1 shipped in graph generation.
``nondet-id``          builtin ``id()``: allocation-order dependent; using it
                       for keys or ordering leaks address-space layout.
``nondet-bare-random`` module-level ``random.*`` / ``numpy.random.*`` calls
                       (global, unseeded RNG state) and unseeded
                       ``random.Random()`` / ``np.random.default_rng()``.
``nondet-time``        wall-clock reads (``time.time`` & friends) inside
                       simulation modules, where they could leak into cycle
                       arithmetic.  Infrastructure packages (jobs, bench,
                       analysis, cluster, the CLI) legitimately measure wall
                       time and are exempt.
``nondet-set-iter``    ``for``-loop / comprehension iteration over a ``set``
                       expression or a local bound to one, and ``.pop()`` on
                       such a set: element order is hash-order.  Membership
                       tests and order-insensitive reductions are fine and
                       not flagged.  (``dict`` iteration is insertion-ordered
                       in Python 3.7+ and therefore exempt.)
``engine-quiescence``  an engine class that overrides ``tick`` /
                       ``blocks_dispatch`` / ``blocks_commit`` without
                       overriding ``quiescent`` breaks the fast-forward
                       quiescence contract: the inherited ``quiescent`` knows
                       nothing about the new per-cycle work, so event jumps
                       could elide it.  Defining ``next_event`` without
                       ``quiescent`` is flagged for the same reason.
``race-unguarded-write``  concurrency pass (:mod:`.concurrency`): a
                       thread-escaping attribute with an inferred lock
                       guard is written outside it.
``race-no-guard``      concurrency pass: a thread-escaping attribute is
                       mutated with no lock held anywhere.
``lock-order``         concurrency pass: statically nested locks form a
                       cycle (AB/BA deadlock recipe).
``time-exempt-drift``  dynamic check: ``TIME_EXEMPT_PREFIXES`` lists a
                       prefix matching no real directory, or an infra
                       package (imports ``threading``/``socket``/
                       ``subprocess``) is not listed.
"""

from __future__ import annotations

import ast
import os

from .linter import Finding, package_root

#: Wall-clock functions of the ``time`` module that must not appear in
#: simulation code.
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

#: ``random`` module functions that use the global (unseeded) RNG state.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

#: Legacy ``numpy.random`` functions backed by the global numpy RNG.
_GLOBAL_NP_RANDOM_FUNCS = frozenset({
    "choice", "normal", "permutation", "rand", "randint", "randn",
    "random", "random_sample", "seed", "shuffle", "uniform",
})

#: Path prefixes (relative to the package root, "/"-separated) where
#: wall-clock reads are legitimate: infrastructure that measures host
#: time, never simulated time.
TIME_EXEMPT_PREFIXES = ("jobs/", "bench/", "analysis/", "cluster/",
                        "faults/", "serve/", "lanes/", "tests/",
                        "benchmarks/", "__main__")

#: Base classes that mark a class as a runahead engine for the
#: quiescence-contract rule, plus a naming convention fallback.
_ENGINE_BASES = frozenset({"RunaheadEngine", "NullEngine"})
_ENGINE_HOOKS = ("tick", "blocks_dispatch", "blocks_commit")


def _name_of(node):
    """Dotted name of a Name/Attribute chain, e.g. ``np.random.seed``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _finding(context, rule, node, message, fix=None):
    return Finding(rule=rule, path=context.path, line=node.lineno,
                   col=node.col_offset, message=message, fix=fix)


# ---------------------------------------------------------------------------
# nondet-hash / nondet-id
# ---------------------------------------------------------------------------
def rule_builtin_hash_id(tree, context):
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id == "hash":
            findings.append(_finding(
                context, "nondet-hash", node,
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "use zlib.crc32 / hashlib for stable hashing"))
        elif node.func.id == "id":
            findings.append(_finding(
                context, "nondet-id", node,
                "builtin id() depends on allocation order; do not use it "
                "for keys, ordering, or anything that reaches Metrics"))
    return findings


# ---------------------------------------------------------------------------
# nondet-bare-random
# ---------------------------------------------------------------------------
def rule_bare_random(tree, context):
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _name_of(node.func)
        if name is None:
            continue
        parts = name.split(".")
        # random.<global fn>(...)  -- global unseeded RNG state
        if len(parts) == 2 and parts[0] == "random" \
                and parts[1] in _GLOBAL_RANDOM_FUNCS:
            findings.append(_finding(
                context, "nondet-bare-random", node,
                f"{name}() uses the global random state; route it through "
                f"a seeded per-run RNG (random.Random(seed))",
                fix={"kind": "reroute_random",
                     "line": node.func.lineno,
                     "col": node.func.col_offset,
                     "end_col": node.func.col_offset + len("random")}))
        # random.Random() with no seed argument
        elif name in ("random.Random", "random.SystemRandom") \
                and not node.args and not node.keywords:
            findings.append(_finding(
                context, "nondet-bare-random", node,
                f"{name}() without a seed is nondeterministic; pass an "
                f"explicit seed"))
        # np.random.<legacy fn>(...) / numpy.random.<legacy fn>(...)
        elif len(parts) == 3 and parts[0] in ("np", "numpy") \
                and parts[1] == "random" \
                and parts[2] in _GLOBAL_NP_RANDOM_FUNCS:
            findings.append(_finding(
                context, "nondet-bare-random", node,
                f"{name}() uses numpy's global RNG; use "
                f"np.random.default_rng(seed)"))
        elif len(parts) == 3 and parts[0] in ("np", "numpy") \
                and parts[1] == "random" and parts[2] == "default_rng" \
                and not node.args and not node.keywords:
            findings.append(_finding(
                context, "nondet-bare-random", node,
                f"{name}() without a seed draws OS entropy; pass an "
                f"explicit seed"))
    return findings


# ---------------------------------------------------------------------------
# nondet-time
# ---------------------------------------------------------------------------
def rule_wall_clock(tree, context):
    if context.relpath.startswith(TIME_EXEMPT_PREFIXES):
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _name_of(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "time" \
                and parts[1] in _TIME_FUNCS:
            findings.append(_finding(
                context, "nondet-time", node,
                f"{name}() reads the wall clock inside simulation code; "
                f"simulated time must come from the cycle counter"))
    return findings


# ---------------------------------------------------------------------------
# nondet-set-iter
# ---------------------------------------------------------------------------
def _is_set_expr(node, set_names):
    """Is ``node`` an expression that (statically) evaluates to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset") and node.args:
        # Bare set()/frozenset() (empty) only matters once iterated via a
        # tracked name; a direct `for x in set()` is pointless but flagged
        # through the generic case below anyway.
        return True
    key = _target_key(node)
    return key is not None and key in set_names


def _target_key(node):
    """Trackable key for a Name or ``self.<attr>`` target/expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return f"self.{node.attr}"
    return None


def _produces_set(node):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


def rule_set_iteration(tree, context):
    findings = []
    # Pass 1: names bound to set-producing expressions, module-wide.  This
    # is deliberately flow-insensitive: a name that ever holds a set is
    # suspect everywhere (rebinding a lane list over a set is exactly the
    # kind of bug the rule exists for).
    set_names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _produces_set(node.value):
            for target in node.targets:
                key = _target_key(target)
                if key is not None:
                    set_names.add(key)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and _produces_set(node.value):
            key = _target_key(node.target)
            if key is not None:
                set_names.add(key)

    def flag_iter(expr, what):
        fix = None
        if expr.lineno == getattr(expr, "end_lineno", None):
            fix = {"kind": "wrap_sorted", "line": expr.lineno,
                   "col": expr.col_offset, "end_col": expr.end_col_offset}
        findings.append(_finding(
            context, "nondet-set-iter", expr,
            f"iterating a set ({what}): element order is hash-order and "
            f"can differ between runs; wrap in sorted(...)", fix=fix))

    # Pass 2: iteration points.
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, set_names):
                flag_iter(node.iter, ast.unparse(node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_names):
                    flag_iter(gen.iter, ast.unparse(gen.iter))
        elif isinstance(node, ast.Call) and not node.args \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "pop":
            key = _target_key(node.func.value)
            if key is not None and key in set_names:
                findings.append(_finding(
                    context, "nondet-set-iter", node,
                    f"{key}.pop() removes an arbitrary (hash-ordered) "
                    f"element from a set"))
    return findings


# ---------------------------------------------------------------------------
# engine-quiescence
# ---------------------------------------------------------------------------
def _is_engine_class(node):
    if node.name.endswith("Engine"):
        return True
    for base in node.bases:
        name = _name_of(base)
        if name is not None and name.split(".")[-1] in _ENGINE_BASES:
            return True
    return False


def rule_engine_quiescence(tree, context):
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and _is_engine_class(node)):
            continue
        methods = {child.name for child in node.body
                   if isinstance(child, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
        overridden = [hook for hook in _ENGINE_HOOKS if hook in methods]
        if overridden and "quiescent" not in methods:
            findings.append(_finding(
                context, "engine-quiescence", node,
                f"engine {node.name} overrides {', '.join(overridden)} "
                f"without overriding quiescent(): the inherited quiescence "
                f"claim would let fast-forward elide the new per-cycle "
                f"work"))
        elif "next_event" in methods and "quiescent" not in methods:
            findings.append(_finding(
                context, "engine-quiescence", node,
                f"engine {node.name} defines next_event() without "
                f"quiescent(): wake-ups are only consulted for engines "
                f"that claim quiescence"))
    return findings


# ---------------------------------------------------------------------------
# time-exempt-drift (dynamic check)
# ---------------------------------------------------------------------------
#: Imports that mark a package as infrastructure (host-facing code that
#: legitimately measures wall time): thread, socket or process control.
_INFRA_IMPORTS = frozenset({"threading", "socket", "subprocess"})


def _exempt_list_line():
    """Line of the TIME_EXEMPT_PREFIXES assignment (for the finding)."""
    try:
        with open(__file__, encoding="utf-8") as handle:
            for number, text in enumerate(handle, start=1):
                if text.startswith("TIME_EXEMPT_PREFIXES"):
                    return number
    except OSError:
        pass
    return 0


def _package_imports_infra(directory):
    """Does any module in ``directory`` import threading/socket/etc.?"""
    for dirpath, dirnames, filenames in os.walk(directory):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            try:
                with open(os.path.join(dirpath, name),
                          encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=name)
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    if any(alias.name.split(".")[0] in _INFRA_IMPORTS
                           for alias in node.names):
                        return True
                elif isinstance(node, ast.ImportFrom) and node.module \
                        and node.module.split(".")[0] in _INFRA_IMPORTS:
                    return True
    return False


def check_time_exemptions():
    """Flag drift between TIME_EXEMPT_PREFIXES and the real tree.

    * **Stale entry**: a listed prefix that matches no directory under
      the package root (or the repo root, for ``tests/`` and friends)
      and no module -- silently exempting nothing.
    * **Unlisted infra package**: a package directory whose modules
      import ``threading``/``socket``/``subprocess`` (host-facing
      infrastructure, which always ends up measuring wall time) but
      which is not in the exemption list; its wall-clock reads would be
      mis-flagged as simulation nondeterminism.
    """
    root = package_root()
    repo_root = os.path.dirname(os.path.dirname(root))
    line = _exempt_list_line()
    findings = []
    for prefix in TIME_EXEMPT_PREFIXES:
        if prefix.endswith("/"):
            name = prefix[:-1]
            if not (os.path.isdir(os.path.join(root, name))
                    or os.path.isdir(os.path.join(repo_root, name))):
                findings.append(Finding(
                    rule="time-exempt-drift", path=__file__, line=line,
                    col=0, message=(
                        f"TIME_EXEMPT_PREFIXES entry {prefix!r} matches "
                        f"no directory under {root} or {repo_root}; "
                        f"remove the stale exemption")))
        elif not os.path.exists(os.path.join(root, prefix + ".py")):
            findings.append(Finding(
                rule="time-exempt-drift", path=__file__, line=line,
                col=0, message=(
                    f"TIME_EXEMPT_PREFIXES entry {prefix!r} matches no "
                    f"module {prefix}.py under {root}; remove the stale "
                    f"exemption")))
    exempt_dirs = {p[:-1] for p in TIME_EXEMPT_PREFIXES if p.endswith("/")}
    for entry in sorted(os.listdir(root)):
        directory = os.path.join(root, entry)
        if not os.path.isdir(directory) or entry == "__pycache__":
            continue
        if entry in exempt_dirs:
            continue
        if _package_imports_infra(directory):
            findings.append(Finding(
                rule="time-exempt-drift", path=__file__, line=line,
                col=0, message=(
                    f"package {entry!r} imports threading/socket/"
                    f"subprocess (infrastructure) but is not in "
                    f"TIME_EXEMPT_PREFIXES; its wall-clock reads would "
                    f"be flagged as simulation nondeterminism")))
    return findings


#: rule name -> pass function.  Order is the report order.
def _rule_concurrency(tree, context):
    from .concurrency import rule_concurrency
    return rule_concurrency(tree, context)


AST_RULES = {
    "nondet-hash": rule_builtin_hash_id,
    "nondet-bare-random": rule_bare_random,
    "nondet-time": rule_wall_clock,
    "nondet-set-iter": rule_set_iteration,
    "engine-quiescence": rule_engine_quiescence,
    "race-unguarded-write": _rule_concurrency,
}

#: Passes that emit more rules than the name they are registered under;
#: lint_file consults this for --rules selection and suppressions.
CO_EMITTED = {
    "nondet-hash": ("nondet-id",),
    "race-unguarded-write": ("race-no-guard", "lock-order"),
}

ALL_RULE_NAMES = tuple(AST_RULES) \
    + tuple(name for names in CO_EMITTED.values() for name in names) \
    + ("schema-roundtrip", "engine-contract", "time-exempt-drift")
