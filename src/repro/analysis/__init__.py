"""Correctness tooling for the simulator: determinism linter + sanitizer.

Two halves, both aimed at the same contract -- the simulator is
deterministic and its microarchitectural invariants hold on every cycle:

* a **static linter** (:mod:`repro.analysis.linter`): AST passes over the
  ``repro`` sources that flag nondeterminism sources (builtin ``hash()``
  / ``id()`` ordering, unseeded RNGs, wall-clock reads in cycle logic,
  iteration over ``set``s), schema-drift checks (every ``SimConfig`` /
  ``Metrics`` field must survive the dict round-trip and participate in
  ``config_digest``), and the engine quiescence contract
  (:mod:`repro.analysis.contracts`);
* a **runtime sanitizer** (:mod:`repro.analysis.sanitize`): cheap
  instrumented assertions (``SimConfig.sanitize`` / ``--sanitize``)
  wired into the core, the memory hierarchy and the DVR subthread --
  commit monotonicity, MSHR leak accounting, ROB/queue occupancy bounds,
  VRAT / reconvergence-stack limits, and a fast-forward cross-check.

The same split covers the *concurrent* infrastructure (cluster, serve):

* a **static concurrency pass** (:mod:`repro.analysis.concurrency`)
  discovers thread-spawn sites, computes which attributes escape to
  multiple threads, infers each attribute's lock guard, and emits the
  ``race-unguarded-write`` / ``race-no-guard`` / ``lock-order`` rules;
* a **thread sanitizer** (:mod:`repro.analysis.threadsan`,
  ``--sanitize-threads`` / ``REPRO_SANITIZE_THREADS=1``): instrumented
  locks from :func:`make_lock` / :func:`make_rlock` track the held-lock
  set per thread, detect lock-order inversions before they deadlock,
  and enforce :func:`guarded_by` declarations.

Surface: ``python -m repro lint [--fix] [--json PATH]``, the
``--sanitize`` flag on ``run`` / experiment / ``bench`` commands, and
``--sanitize-threads`` on the cluster/serve commands.

``ANALYSIS_VERSION`` names the rule catalogue; the ``repro.jobs`` ledger
stamps it (plus the sanitize flag) into every record so results produced
by a pre-sanitizer tree remain distinguishable.
"""

from .linter import (ANALYSIS_VERSION, Finding, LintReport, iter_source_files,
                     lint_file, run_lint)
from .sanitize import Sanitizer, SanitizerError
from .threadsan import (ThreadSanitizer, ThreadSanitizerError, guarded_by,
                        make_lock, make_rlock, thread_safe)

__all__ = [
    "ANALYSIS_VERSION",
    "Finding",
    "LintReport",
    "Sanitizer",
    "SanitizerError",
    "ThreadSanitizer",
    "ThreadSanitizerError",
    "guarded_by",
    "iter_source_files",
    "lint_file",
    "make_lock",
    "make_rlock",
    "run_lint",
    "thread_safe",
]
