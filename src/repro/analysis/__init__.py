"""Correctness tooling for the simulator: determinism linter + sanitizer.

Two halves, both aimed at the same contract -- the simulator is
deterministic and its microarchitectural invariants hold on every cycle:

* a **static linter** (:mod:`repro.analysis.linter`): AST passes over the
  ``repro`` sources that flag nondeterminism sources (builtin ``hash()``
  / ``id()`` ordering, unseeded RNGs, wall-clock reads in cycle logic,
  iteration over ``set``s), schema-drift checks (every ``SimConfig`` /
  ``Metrics`` field must survive the dict round-trip and participate in
  ``config_digest``), and the engine quiescence contract
  (:mod:`repro.analysis.contracts`);
* a **runtime sanitizer** (:mod:`repro.analysis.sanitize`): cheap
  instrumented assertions (``SimConfig.sanitize`` / ``--sanitize``)
  wired into the core, the memory hierarchy and the DVR subthread --
  commit monotonicity, MSHR leak accounting, ROB/queue occupancy bounds,
  VRAT / reconvergence-stack limits, and a fast-forward cross-check.

Surface: ``python -m repro lint [--fix] [--json PATH]`` and the
``--sanitize`` flag on ``run`` / experiment / ``bench`` commands.

``ANALYSIS_VERSION`` names the rule catalogue; the ``repro.jobs`` ledger
stamps it (plus the sanitize flag) into every record so results produced
by a pre-sanitizer tree remain distinguishable.
"""

from .linter import (ANALYSIS_VERSION, Finding, LintReport, iter_source_files,
                     lint_file, run_lint)
from .sanitize import Sanitizer, SanitizerError

__all__ = [
    "ANALYSIS_VERSION",
    "Finding",
    "LintReport",
    "Sanitizer",
    "SanitizerError",
    "iter_source_files",
    "lint_file",
    "run_lint",
]
