"""Runtime thread sanitizer: instrumented locks + lock-order checking.

The static half of the concurrency analysis
(:mod:`repro.analysis.concurrency`) infers lock discipline from the
package AST; this module is the dynamic half, mirroring the simulator's
:class:`~repro.analysis.sanitize.Sanitizer`: cheap instrumentation that
is **off by default** and observation-only when on, so metrics stay
bit-identical either way.

Enabled with ``--sanitize-threads`` on the CLI or
``REPRO_SANITIZE_THREADS=1`` in the environment (read at import, so a
whole pytest run can be sanitized without code changes).  When enabled:

* :func:`make_lock` / :func:`make_rlock` -- the factories the cluster
  and serve stacks use instead of calling ``threading.Lock()`` directly
  -- return instrumented wrappers that report every acquire/release to
  the process-wide :class:`ThreadSanitizer`;
* the sanitizer tracks the **held-lock set per thread** and records an
  ordering edge ``A -> B`` whenever ``B`` is acquired while ``A`` is
  held.  An acquisition that would close a cycle in that graph is a
  lock-order inversion -- the classic AB/BA deadlock recipe -- and
  raises :class:`ThreadSanitizerError` *before* blocking, so the bug is
  reported even on interleavings that happen not to deadlock;
* methods declared ``@guarded_by("_lock")`` check, on entry, that the
  calling thread actually holds ``self._lock``.  The declaration is
  also consumed statically: the linter treats the whole method body as
  guarded by that lock.

When disabled the factories return plain ``threading`` locks and
``@guarded_by`` only stamps metadata -- zero steady-state overhead.

Violations are raised *and* recorded on ``sanitizer().violations``:
an inversion detected on a daemon thread must not vanish with the
thread, so tests and the CLI can assert on the recorded list.
"""

from __future__ import annotations

import functools
import os
import sys
import threading

#: Environment switch; read once at import so locks created during
#: module import (coordinator/daemon singletons) are instrumented too.
_ENV_FLAG = "REPRO_SANITIZE_THREADS"


class ThreadSanitizerError(AssertionError):
    """A lock-order inversion or guarded-attribute violation."""


class ThreadSanitizer:
    """Process-wide held-lock tracking and lock-order graph.

    Internally synchronized with a *plain* lock (never instrumented,
    so the sanitizer cannot recurse into itself).
    """

    def __init__(self):
        self._tls = threading.local()
        # lock name -> {later lock name: first-seen site description}
        self.edges = {}
        self.violations = []         # recorded ThreadSanitizerError args
        self.acquisitions = 0        # instrumented acquires (telemetry)
        self.guard_checks = 0        # @guarded_by entry checks
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _held(self):
        """This thread's stack of (SanLock, recursion count) entries."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_names(self):
        return [lock.name for lock, _count in self._held()]

    def holds(self, lock):
        return any(entry is lock for entry, _count in self._held())

    # ------------------------------------------------------------------
    def _path_exists(self, src, dst):
        """Is there an edge path ``src -> ... -> dst`` in the graph?"""
        stack, seen = [src], set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return False

    def _fail(self, message):
        error = ThreadSanitizerError(message)
        self.violations.append(message)
        print(f"[sanitize-threads] {message}", file=sys.stderr, flush=True)
        raise error

    def before_acquire(self, lock):
        """Order check; runs *before* blocking on the inner lock."""
        stack = self._held()
        for held, _count in stack:
            if held is lock:
                return               # reentrant (RLock); no new edge
        self.acquisitions += 1
        thread = threading.current_thread().name
        with self._lock:
            for held, _count in stack:
                if held.name == lock.name:
                    continue         # two locks sharing a name: no edge
                # Adding held -> lock; a pre-existing path lock -> held
                # means some other thread acquired them in the opposite
                # order -- the AB/BA deadlock recipe.
                if self._path_exists(lock.name, held.name):
                    first = self.edges.get(lock.name, {}).get(
                        held.name, "<unknown site>")
                    self._fail(
                        f"lock-order inversion: thread {thread!r} "
                        f"acquires {lock.name!r} while holding "
                        f"{held.name!r}, but the opposite order was "
                        f"observed at {first}")
                self.edges.setdefault(held.name, {}).setdefault(
                    lock.name, f"thread {thread!r}")

    def after_acquire(self, lock):
        stack = self._held()
        for index, (held, count) in enumerate(stack):
            if held is lock:
                stack[index] = (held, count + 1)
                return
        stack.append((lock, 1))

    def after_release(self, lock):
        stack = self._held()
        for index in range(len(stack) - 1, -1, -1):
            held, count = stack[index]
            if held is lock:
                if count > 1:
                    stack[index] = (held, count - 1)
                else:
                    del stack[index]
                return

    # ------------------------------------------------------------------
    def check_guard(self, owner, lock_attr, method_name):
        """``@guarded_by`` entry check: the declared lock must be held."""
        self.guard_checks += 1
        lock = getattr(owner, lock_attr, None)
        if lock is None:
            self._fail(
                f"@guarded_by({lock_attr!r}) on "
                f"{type(owner).__name__}.{method_name}: no such attribute")
        if isinstance(lock, SanLock):
            if not self.holds(lock):
                self._fail(
                    f"{type(owner).__name__}.{method_name} requires "
                    f"{lock_attr!r} but thread "
                    f"{threading.current_thread().name!r} holds "
                    f"{self.held_names() or 'no locks'}")
        elif hasattr(lock, "locked") and not lock.locked():
            # Plain lock (created before enable()): ownership is not
            # trackable, but an unlocked lock is definitely not held.
            self._fail(
                f"{type(owner).__name__}.{method_name} requires "
                f"{lock_attr!r} but it is not locked")


class SanLock:
    """Instrumented ``Lock``/``RLock`` reporting to a ThreadSanitizer."""

    def __init__(self, name, sanitizer, reentrant=False):
        self.name = name
        self._san = sanitizer
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking=True, timeout=-1):
        self._san.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._san.after_acquire(self)
        return acquired

    def release(self):
        self._inner.release()
        self._san.after_release(self)

    def locked(self):
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return f"<SanLock {self.name}>"


# ---------------------------------------------------------------------------
# Process-wide state + factories
# ---------------------------------------------------------------------------
_sanitizer = ThreadSanitizer()
_enabled = bool(os.environ.get(_ENV_FLAG))
_counter = 0
_counter_lock = threading.Lock()


def sanitizer():
    """The process-wide :class:`ThreadSanitizer` instance."""
    return _sanitizer


def enabled():
    return _enabled


def enable():
    """Turn on lock instrumentation for locks created *from now on*."""
    global _enabled
    _enabled = True


def disable(reset=True):
    global _sanitizer, _enabled
    _enabled = False
    if reset:
        _sanitizer = ThreadSanitizer()


def _next_name(kind):
    global _counter
    with _counter_lock:
        _counter += 1
        return f"{kind}-{_counter}"


def make_lock(name=None):
    """A ``threading.Lock`` (or, sanitized, an instrumented wrapper)."""
    if not _enabled:
        return threading.Lock()
    return SanLock(name or _next_name("lock"), _sanitizer)


def make_rlock(name=None):
    if not _enabled:
        return threading.RLock()
    return SanLock(name or _next_name("rlock"), _sanitizer, reentrant=True)


# ---------------------------------------------------------------------------
# Declarations the static pass also consumes
# ---------------------------------------------------------------------------
def guarded_by(lock_attr):
    """Declare that a method must run with ``self.<lock_attr>`` held.

    Statically, the linter treats the decorated method's body as guarded
    by that lock; dynamically (sanitize-threads mode) the declaration is
    checked on every call.
    """
    def decorate(function):
        @functools.wraps(function)
        def wrapper(self, *args, **kwargs):
            if _enabled:
                _sanitizer.check_guard(self, lock_attr, function.__name__)
            return function(self, *args, **kwargs)
        wrapper.__guarded_by__ = lock_attr
        return wrapper
    return decorate


def thread_safe(cls):
    """Declare a class internally synchronized (callers need no lock).

    The static pass exempts attributes holding instances of a
    ``@thread_safe`` class from the escape analysis, the same way it
    exempts ``queue.Queue``; the decorator is the class's promise that
    every public method takes its own lock.
    """
    cls.__thread_safe__ = True
    return cls
