"""Runtime sanitizer: cheap invariant assertions for sanitized runs.

Enabled with ``SimConfig.sanitize`` / ``--sanitize``.  The harness
builds one :class:`Sanitizer` per simulation and attaches it to the
core, the memory hierarchy and (for VR/DVR) the vector subthread; each
component calls its hook at most once per simulated cycle.  A violated
invariant raises :class:`SanitizerError` immediately -- the simulator
state at that point *is* the bug report.

The sanitizer is observation-only: it never mutates simulator state, so
a sanitized run produces **bit-identical metrics** to an unsanitized one
(asserted by ``tests/test_analysis_sanitize.py`` and cross-checked by
``repro bench``).  Its own accounting (``checks``) lives on the
sanitizer object and is never folded into :class:`Metrics`.

The invariant catalogue -- what each assertion protects and the paper
mechanism it maps to -- is documented in DESIGN.md.
"""

from __future__ import annotations


class SanitizerError(AssertionError):
    """A microarchitectural invariant was violated during simulation."""


class Sanitizer:
    """Invariant checks wired into the core, memory system and subthread."""

    def __init__(self, config):
        self.config = config
        self.checks = 0             # hook invocations (sanity telemetry)
        self._last_commit_seq = -1  # seq of the last committed instruction
        self._last_commit_cycle = -1

    def _fail(self, where, message):
        raise SanitizerError(f"[sanitize:{where}] {message}")

    # ------------------------------------------------------------------
    # OoOCore hooks
    # ------------------------------------------------------------------
    def on_commit(self, core, rob, head0, head):
        """After the commit stage: in-order, monotone, completed commits
        plus ROB/queue occupancy bounds."""
        self.checks += 1
        now = core.now
        cfg = core.core_cfg
        if head - head0 > cfg.width:
            self._fail("commit", f"committed {head - head0} instructions "
                                 f"in one cycle (width {cfg.width})")
        for index in range(head0, head):
            dyn = rob[index]
            if not dyn.completed:
                self._fail("commit", f"committed incomplete instruction "
                                     f"seq={dyn.seq} at cycle {now}")
            if dyn.seq <= self._last_commit_seq:
                self._fail("commit", f"commit order violation: seq "
                                     f"{dyn.seq} after "
                                     f"{self._last_commit_seq}")
            if dyn.complete_cycle > now:
                self._fail("commit", f"seq={dyn.seq} committed at cycle "
                                     f"{now} before completing at "
                                     f"{dyn.complete_cycle}")
            self._last_commit_seq = dyn.seq
            self._last_commit_cycle = now
        occupancy = len(rob) - head
        if not 0 <= occupancy <= cfg.rob_size:
            self._fail("rob", f"ROB occupancy {occupancy} outside "
                              f"[0, {cfg.rob_size}]")
        if not 0 <= core._iq_count <= cfg.issue_queue_size:
            self._fail("iq", f"issue-queue count {core._iq_count} outside "
                             f"[0, {cfg.issue_queue_size}]")
        if not 0 <= core._lq_count <= cfg.load_queue_size:
            self._fail("lq", f"load-queue count {core._lq_count} outside "
                             f"[0, {cfg.load_queue_size}]")
        if not 0 <= core._sq_count <= cfg.store_queue_size:
            self._fail("sq", f"store-queue count {core._sq_count} outside "
                             f"[0, {cfg.store_queue_size}]")

    def on_fast_forward(self, core, now, target):
        """Before an event jump: the skipped span must be provably inert
        -- nothing ready, retrying, or completing before ``target``."""
        self.checks += 1
        if target <= now:
            self._fail("fast-forward", f"non-advancing jump "
                                       f"{now} -> {target}")
        if core._ready or core._fu_retry or core._mshr_retry:
            self._fail("fast-forward",
                       f"jump over a ready instruction at cycle {now}: "
                       f"ready={len(core._ready)} "
                       f"fu_retry={len(core._fu_retry)} "
                       f"mshr_retry={len(core._mshr_retry)}")
        head = core.rob_head_instruction()
        if head is not None and head.completed:
            self._fail("fast-forward",
                       f"jump while ROB head seq={head.seq} is completed "
                       f"and could commit at cycle {now + 1}")
        heap = core._writebacks
        if heap and heap[0][0] < target:
            self._fail("fast-forward",
                       f"jump to {target} hides a writeback scheduled "
                       f"for cycle {heap[0][0]}")

    # ------------------------------------------------------------------
    # MemoryHierarchy hook
    # ------------------------------------------------------------------
    def on_mem_tick(self, hierarchy, now):
        """MSHR leak accounting: allocate/fill/release must balance."""
        self.checks += 1
        mshrs = hierarchy.mshrs
        outstanding = len(mshrs._outstanding)
        if mshrs.allocations - mshrs.releases != outstanding:
            self._fail("mshr", f"leak: {mshrs.allocations} allocations - "
                               f"{mshrs.releases} releases != "
                               f"{outstanding} outstanding at cycle {now}")
        if outstanding > mshrs.num_entries:
            self._fail("mshr", f"occupancy {outstanding} exceeds "
                               f"{mshrs.num_entries} entries")
        # Every outstanding miss must have a scheduled release, or it
        # would hold its MSHR forever.
        if outstanding > len(mshrs._release_heap):
            self._fail("mshr", f"{outstanding} outstanding misses but "
                               f"only {len(mshrs._release_heap)} "
                               f"scheduled releases")
        for line_addr, fill_cycle in mshrs._outstanding.items():
            if fill_cycle <= now:
                # drain(now) ran just before this hook: anything due has
                # been released already.
                self._fail("mshr", f"line {line_addr:#x} filled at cycle "
                                   f"{fill_cycle} still holds an MSHR at "
                                   f"cycle {now}")
            break   # spot-check one entry per cycle; full scan is O(n)

    # ------------------------------------------------------------------
    # VectorSubthread hook (VR / DVR)
    # ------------------------------------------------------------------
    def on_subthread_step(self, sub):
        """Structural limits of the decoupled subthread."""
        self.checks += 1
        dvr = sub.config
        if len(sub.reconv) > sub.reconv.depth:
            self._fail("reconv", f"reconvergence stack depth "
                                 f"{len(sub.reconv)} exceeds bound "
                                 f"{sub.reconv.depth}")
        if len(sub.active) > dvr.max_lanes:
            self._fail("lanes", f"{len(sub.active)} active lanes exceed "
                               f"max_lanes={dvr.max_lanes}")
        if sub.executed > dvr.subthread_timeout:
            self._fail("timeout", f"subthread executed {sub.executed} "
                                  f"instructions past timeout "
                                  f"{dvr.subthread_timeout}")
        vrat = sub.vrat
        if not 0 <= vrat.free_int_regs <= vrat.int_capacity:
            self._fail("vrat", f"int free list {vrat.free_int_regs} "
                               f"outside [0, {vrat.int_capacity}]")
        if not 0 <= vrat.free_vector_regs <= vrat.vec_capacity:
            self._fail("vrat", f"vector free list "
                               f"{vrat.free_vector_regs} outside "
                               f"[0, {vrat.vec_capacity}]")
