"""Static concurrency analysis: guard inference, escape lint, lock order.

The distributed stack (cluster coordinator, serve daemon, workers) is
genuinely concurrent: accept/reader/heartbeat/scheduler threads share
``self.``-state on a handful of classes.  The determinism rules cannot
see a race -- a racy counter is still deterministic *code* -- so this
pass reconstructs each class's threading structure from the AST:

1. **Thread discovery.**  A method is a *thread entry* if it is passed
   as a ``threading.Thread(target=self.m)`` target or registered as a
   callback handler (``something.handler = self.m``) -- the two ways
   this codebase hands a method to another thread.  A class with no
   entries is single-threaded and skipped.
2. **Escape analysis.**  Every ``self.<attr>`` access is attributed to
   the set of threads that can reach its method: each entry's
   transitive ``self.``-call closure is one context, and methods
   callable from outside (public, or unreachable from any entry) form
   the ``<main>`` context.  An attribute whose accesses span >= 2
   contexts *escapes*.
3. **Guard inference.**  Accesses lexically inside ``with self._lock:``
   (or a method declared ``@guarded_by("_lock")``) are guarded by that
   lock; the lock guarding the most accesses is the attribute's
   inferred guard.

Rule catalogue
--------------
``race-unguarded-write``  an escaping attribute has an inferred guard,
                          but some write happens outside it.
``race-no-guard``         an escaping attribute is *mutated* (augmented
                          assignment, ``d[k] = v``, ``.append()`` & co)
                          with no lock held at any access site.
``lock-order``            two locks are statically nested in opposite
                          orders (any cycle in the nesting graph): the
                          AB/BA deadlock recipe.

Deliberate precision limits (documented, not bugs): plain rebinds of
constants (``self._closing = True``) are treated as benign flags;
attributes holding intrinsically thread-safe objects (``queue.Queue``,
``threading.Event``, locks themselves, classes declared
``@thread_safe``) are exempt; ``__init__`` runs before the object is
shared and is excluded from access accounting; happens-before edges
other than "init precedes spawn" are not modeled, so a write that is
sequenced before every ``Thread.start()`` may still be flagged --
suppress with ``# repro: allow(...)`` where provably safe.

The runtime half (:mod:`repro.analysis.threadsan`) checks the same
discipline dynamically: instrumented locks, held-set tracking,
acquisition-graph inversion detection, ``@guarded_by`` enforcement.
"""

from __future__ import annotations

import ast

from .linter import Finding, iter_source_files

#: Main-thread context label (methods callable from outside the class).
MAIN = "<main>"

#: Constructors whose result is a lock (guards, exempt from escape).
_LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock", "Lock", "RLock",
    "make_lock", "make_rlock", "threadsan.make_lock",
    "threadsan.make_rlock",
})

#: Constructors whose result is intrinsically thread-safe.
_SAFE_CONSTRUCTORS = frozenset({
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue", "Queue", "SimpleQueue",
    "threading.Event", "Event", "threading.Condition", "Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "collections.deque", "deque",
})

#: Method names that mutate their receiver in place.  Calling one on an
#: escaping attribute is a write; other method calls count as reads
#: (a pure/mutating distinction is not statically decidable).
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "sort", "update",
})

_READ, _REBIND, _MUTATE = "read", "rebind", "mutate"


def _dotted(node):
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Package-wide @thread_safe registry (cached per process)
# ---------------------------------------------------------------------------
_safe_class_cache = {}


def safe_class_names(package_files=None):
    """Names of ``@thread_safe``-decorated classes across the package.

    The concurrency pass runs per file, but a thread-safe container
    (e.g. the serve daemon's ``SessionRegistry``) is used from *other*
    files; this one package-wide scan (cached) lets every file's pass
    exempt attributes holding such instances.
    """
    key = "default" if package_files is None else tuple(package_files)
    cached = _safe_class_cache.get(key)
    if cached is not None:
        return cached
    names = set()
    for path, _relpath in iter_source_files(package_files):
        try:
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
        except (OSError, SyntaxError):
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                name = _dotted(decorator)
                if name is not None and name.split(".")[-1] == "thread_safe":
                    names.add(node.name)
    _safe_class_cache[key] = names
    return names


# ---------------------------------------------------------------------------
# Per-class model
# ---------------------------------------------------------------------------
class _Access:
    __slots__ = ("key", "method", "kind", "guards", "node", "const")

    def __init__(self, key, method, kind, guards, node, const=False):
        self.key = key               # dotted path, e.g. "self._stats"
        self.method = method
        self.kind = kind             # _READ | _REBIND | _MUTATE
        self.guards = guards         # tuple of held lock keys (outermost first)
        self.node = node
        self.const = const           # rebind of a literal constant


class _ClassModel:
    """Everything the rules need to know about one class."""

    def __init__(self, node):
        self.node = node
        self.methods = {
            child.name: child for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))}
        self.entries = set()         # thread-entry method names
        self.calls = {}              # method -> set of self-methods called
        self.lock_attrs = set()      # attr names assigned lock constructors
        self.safe_attrs = set()      # attr names assigned thread-safe ctors
        self.accesses = []           # [_Access] (``__init__`` excluded)
        self.lock_edges = []         # [(outer key, inner key, node)]

    def is_lock_key(self, key):
        last = key.split(".")[-1]
        return last in self.lock_attrs or last.endswith("lock")

    # -- context computation -------------------------------------------
    def _closure(self, roots):
        reach, stack = set(roots), list(roots)
        while stack:
            for callee in self.calls.get(stack.pop(), ()):
                if callee not in reach:
                    reach.add(callee)
                    stack.append(callee)
        return reach

    def contexts(self):
        """method name -> frozenset of context labels."""
        entry_reach = {e: self._closure([e]) for e in sorted(self.entries)}
        covered = set()
        for reach in entry_reach.values():
            covered.update(reach)
        main_roots = [m for m in self.methods
                      if m not in self.entries
                      and (not m.startswith("_") or m not in covered)]
        main_reach = self._closure(main_roots)
        result = {}
        for method in self.methods:
            labels = {e for e, reach in entry_reach.items()
                      if method in reach}
            if method in main_reach:
                labels.add(MAIN)
            result[method] = frozenset(labels)
        return result


def _is_thread_call(call):
    """Is ``call`` a ``threading.Thread(...)``-style construction?"""
    name = _dotted(call.func)
    return name is not None and name.split(".")[-1] == "Thread"


class _MethodScanner:
    """One walk of a method body: accesses, guards, aliases, entries."""

    def __init__(self, model, method_node, record_accesses=True):
        self.model = model
        self.method = method_node.name
        self.record = record_accesses
        self.aliases = {}            # local name -> dotted self-path
        self._collect_aliases(method_node)
        guards = self._declared_guards(method_node)
        for statement in method_node.body:
            self._scan(statement, guards)

    def _declared_guards(self, method_node):
        """``@guarded_by("_lock")`` -> the whole body is guarded."""
        guards = ()
        for decorator in method_node.decorator_list:
            if isinstance(decorator, ast.Call) \
                    and (_dotted(decorator.func) or "").split(".")[-1] \
                    == "guarded_by" \
                    and decorator.args \
                    and isinstance(decorator.args[0], ast.Constant) \
                    and isinstance(decorator.args[0].value, str):
                guards += (f"self.{decorator.args[0].value}",)
        return guards

    def _collect_aliases(self, method_node):
        """Flow-insensitive ``coordinator = self.coordinator`` tracking."""
        for node in ast.walk(method_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = self._chain(node.value, raw=True)
                if value is not None:
                    self.aliases[node.targets[0].id] = value

    def _chain(self, node, raw=False):
        """Dotted self-path of an Attribute/Name, through local aliases."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id == "self":
            base = "self"
        elif not raw and node.id in self.aliases:
            base = self.aliases[node.id]
        else:
            return None
        if base == "self" and not parts:
            return None
        return ".".join([base] + list(reversed(parts)))

    # ------------------------------------------------------------------
    def _emit(self, key, kind, guards, node, const=False):
        if self.record and key is not None:
            self.model.accesses.append(_Access(
                key, self.method, kind, guards, node, const=const))

    def _scan_reads(self, node, guards):
        """Record maximal self-chains in an expression as reads."""
        if node is None:
            return
        if isinstance(node, ast.Attribute):
            key = self._chain(node)
            if key is not None:
                self._emit(key, _READ, guards, node)
                return               # don't descend into the chain itself
        elif isinstance(node, ast.Call):
            self._scan_call(node, guards)
            return
        for child in ast.iter_child_nodes(node):
            self._scan_reads(child, guards)

    def _scan_call(self, call, guards):
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = self._chain(func.value)
            if receiver is not None:
                kind = (_MUTATE if func.attr in _MUTATOR_METHODS else _READ)
                self._emit(receiver, kind, guards, call)
            else:
                self._scan_reads(func.value, guards)
        else:
            self._scan_reads(func, guards)
        if _is_thread_call(call):
            self._note_thread_targets(call)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._note_method_ref(arg, thread=_is_thread_call(call))
            self._scan_reads(arg, guards)

    def _note_thread_targets(self, call):
        for keyword in call.keywords:
            if keyword.arg == "target":
                self._note_method_ref(keyword.value, thread=True)

    def _note_method_ref(self, node, thread=False):
        """A bare ``self.m`` handed to a Thread target is an entry."""
        if not thread:
            return
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" \
                and node.attr in self.model.methods:
            self.model.entries.add(node.attr)

    def _scan_target(self, target, value, guards):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, None, guards)
            return
        if isinstance(target, ast.Attribute):
            key = self._chain(target)
            const = isinstance(value, ast.Constant)
            self._emit(key, _REBIND, guards, target, const=const)
            # Registering a self-method as a handler on another object
            # hands it to that object's threads: a callback entry.
            if value is not None and isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name) \
                    and value.value.id == "self" \
                    and value.attr in self.model.methods:
                self.model.entries.add(value.attr)
        elif isinstance(target, ast.Subscript):
            self._emit(self._chain(target.value), _MUTATE, guards, target)
            self._scan_reads(target.slice, guards)
        elif isinstance(target, ast.Starred):
            self._scan_target(target.value, None, guards)

    def _scan(self, node, guards):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guards
            for item in node.items:
                key = self._chain(item.context_expr)
                if key is not None and self.model.is_lock_key(key):
                    for outer in inner:
                        self.model.lock_edges.append(
                            (outer, key, item.context_expr))
                    inner += (key,)
                else:
                    self._scan_reads(item.context_expr, guards)
            for statement in node.body:
                self._scan(statement, inner)
        elif isinstance(node, ast.Assign):
            self._note_constructed_attr(node)
            for target in node.targets:
                self._scan_target(target, node.value, guards)
            self._scan_reads(node.value, guards)
            self._note_calls(node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._note_constructed_attr(node, targets=[node.target])
                self._scan_target(node.target, node.value, guards)
                self._scan_reads(node.value, guards)
                self._note_calls(node.value)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Attribute):
                self._emit(self._chain(node.target), _MUTATE, guards,
                           node.target)
            elif isinstance(node.target, ast.Subscript):
                self._emit(self._chain(node.target.value), _MUTATE, guards,
                           node.target)
                self._scan_reads(node.target.slice, guards)
            self._scan_reads(node.value, guards)
            self._note_calls(node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._emit(self._chain(target.value), _MUTATE, guards,
                               target)
                    self._scan_reads(target.slice, guards)
                elif isinstance(target, ast.Attribute):
                    self._emit(self._chain(target), _MUTATE, guards, target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for statement in node.body:   # closures share the context
                self._scan(statement, guards)
        elif isinstance(node, ast.ClassDef):
            pass                      # nested classes analyzed separately
        elif isinstance(node, ast.expr):
            self._scan_reads(node, guards)
            self._note_calls(node)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_reads(child, guards)
                    self._note_calls(child)
                else:
                    self._scan(child, guards)

    def _note_calls(self, node):
        """self.m() call-graph edges (for context reachability)."""
        if node is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Attribute) \
                    and isinstance(child.func.value, ast.Name) \
                    and child.func.value.id == "self" \
                    and child.func.attr in self.model.methods:
                self.model.calls.setdefault(
                    self.method, set()).add(child.func.attr)

    def _note_constructed_attr(self, node, targets=None):
        """Classify ``self.x = <Lock()/Queue()/SafeClass()>`` attrs."""
        value = node.value
        if not isinstance(value, ast.Call):
            return
        name = _dotted(value.func)
        if name is None:
            return
        for target in (targets if targets is not None else node.targets):
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if name in _LOCK_CONSTRUCTORS:
                self.model.lock_attrs.add(target.attr)
            elif name in _SAFE_CONSTRUCTORS \
                    or name.split(".")[-1] in safe_class_names():
                self.model.safe_attrs.add(target.attr)


# ---------------------------------------------------------------------------
# The rule pass
# ---------------------------------------------------------------------------
def _build_model(class_node):
    model = _ClassModel(class_node)
    # Two passes: entries/locks/aliases first (``__init__`` registers
    # handlers and constructs locks), then accesses with full knowledge.
    for name, method in model.methods.items():
        _MethodScanner(model, method, record_accesses=False)
    model.calls.clear()
    model.lock_edges = []
    for name, method in model.methods.items():
        if name in ("__init__", "__new__", "__post_init__"):
            continue                 # runs before the object is shared
        _MethodScanner(model, method, record_accesses=True)
    return model


def _finding(context, rule, node, message):
    return Finding(rule=rule, path=context.path, line=node.lineno,
                   col=node.col_offset, message=message, fix=None)


def _label(contexts):
    names = sorted(c if c == MAIN else f"thread:{c}" for c in contexts)
    return ", ".join(names)


def _check_attributes(model, context, findings):
    contexts = model.contexts()
    by_key = {}
    for access in model.accesses:
        by_key.setdefault(access.key, []).append(access)
    for key in sorted(by_key):
        accesses = by_key[key]
        if model.is_lock_key(key):
            continue
        root = key.split(".")[1] if key.startswith("self.") else key
        if root in model.safe_attrs or root in model.lock_attrs:
            continue
        ctxs = set()
        for access in accesses:
            ctxs.update(contexts.get(access.method, ()))
        if len(ctxs) < 2:
            continue                 # single-threaded attribute
        writes = [a for a in accesses if a.kind in (_REBIND, _MUTATE)]
        if not writes:
            continue                 # shared read-only state
        if all(w.kind == _REBIND and w.const for w in writes):
            continue                 # a flag (self._closing = True)
        guard_counts = {}
        for access in accesses:
            for guard in access.guards:
                guard_counts[guard] = guard_counts.get(guard, 0) + 1
        if guard_counts:
            inferred = max(sorted(guard_counts), key=guard_counts.get)
            for write in writes:
                if inferred not in write.guards:
                    findings.append(_finding(
                        context, "race-unguarded-write", write.node,
                        f"{key} is guarded by `with {inferred}` at "
                        f"{guard_counts[inferred]} site(s) but this "
                        f"{'mutation' if write.kind == _MUTATE else 'write'}"
                        f" in {write.method}() runs outside it "
                        f"(attribute escapes to {_label(ctxs)})"))
        elif any(w.kind == _MUTATE for w in writes):
            first = next(w for w in writes if w.kind == _MUTATE)
            findings.append(_finding(
                context, "race-no-guard", first.node,
                f"{key} escapes to {_label(ctxs)} and is mutated "
                f"with no lock held at any of its {len(accesses)} "
                f"access site(s); guard it or confine mutation to "
                f"one thread"))


def _check_lock_order(edges, context, findings):
    """Cycles in the static lock-nesting graph (AB/BA inversions)."""
    graph = {}
    for outer, inner, _node in edges:
        if outer != inner:
            graph.setdefault(outer, set()).add(inner)

    def reachable(src, dst):
        stack, seen = [src], set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    reported = set()
    for outer, inner, node in edges:
        if outer == inner or (outer, inner) in reported:
            continue
        if reachable(inner, outer):
            reported.add((outer, inner))
            findings.append(_finding(
                context, "lock-order", node,
                f"acquiring {inner} while holding {outer} closes a "
                f"cycle in the lock-order graph (the opposite nesting "
                f"also exists): AB/BA deadlock recipe"))


def rule_concurrency(tree, context):
    """Entry point registered in the AST-rule catalogue.

    Emits ``race-unguarded-write``, ``race-no-guard`` and ``lock-order``
    (the catalogue registers it under the first name; the other two are
    co-emitted, like ``nondet-hash``/``nondet-id``).
    """
    findings = []
    file_lock_edges = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = _build_model(node)
        file_lock_edges.extend(model.lock_edges)
        if not model.entries:
            continue                 # no threads spawned: single context
        _check_attributes(model, context, findings)
    _check_lock_order(file_lock_edges, context, findings)
    return findings
