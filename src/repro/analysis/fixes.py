"""``repro lint --fix``: textual application of mechanical rewrites.

Rules attach a ``fix`` payload to findings they know how to repair:

* ``wrap_sorted``     -- wrap a set iteration expression in ``sorted(...)``
                         (hash-order -> deterministic order);
* ``reroute_random``  -- rewrite a bare ``random.<fn>(...)`` call to go
                         through a module-level seeded RNG
                         (``_repro_rng = random.Random(<seed>)``), which
                         is inserted after the ``import random`` line if
                         the module does not define one yet.

Fixes are applied right-to-left, bottom-to-top, so earlier edits never
shift later offsets.  Suppressed findings are left alone.
"""

from __future__ import annotations

RNG_NAME = "_repro_rng"
RNG_SEED = 0x5EED
_RNG_LINE = (f"{RNG_NAME} = random.Random({RNG_SEED:#x})"
             "  # seeded per-run RNG (repro lint --fix)")


def fix_source(source, findings):
    """Apply every fixable, unsuppressed finding to ``source``.

    Returns ``(new_source, applied)`` where ``applied`` is the number of
    rewrites performed.  Fixes whose source text no longer matches the
    payload (the file changed since linting) are skipped, not botched.
    """
    newline = "\r\n" if "\r\n" in source else "\n"
    lines = source.split(newline)
    fixes = []
    seen = set()
    for finding in findings:
        fix = finding.fix
        if fix is None or finding.suppressed:
            continue
        key = (fix["kind"], fix["line"], fix["col"], fix.get("end_col"))
        if key not in seen:
            seen.add(key)
            fixes.append(fix)
    applied = 0
    need_rng = False
    for fix in sorted(fixes, key=lambda f: (f["line"], f["col"]),
                      reverse=True):
        index = fix["line"] - 1
        if not 0 <= index < len(lines):
            continue
        text = lines[index]
        col, end = fix["col"], fix["end_col"]
        if fix["kind"] == "wrap_sorted":
            if end > len(text):
                continue
            lines[index] = (text[:col] + "sorted(" + text[col:end] + ")"
                            + text[end:])
            applied += 1
        elif fix["kind"] == "reroute_random":
            if text[col:end] != "random":
                continue
            lines[index] = text[:col] + RNG_NAME + text[end:]
            applied += 1
            need_rng = True
    if need_rng and not any(
            line.startswith(f"{RNG_NAME} =") for line in lines):
        for index, line in enumerate(lines):
            if line.strip() == "import random" \
                    or line.strip().startswith("import random "):
                lines.insert(index + 1, _RNG_LINE)
                break
        else:
            # No plain import found (e.g. ``from random import ...``):
            # prepend both the import and the RNG at the top, after any
            # module docstring/__future__ block would be nicer, but a
            # module that trips this rule without importing random is
            # already unusual -- keep it simple and visible.
            lines.insert(0, "import random")
            lines.insert(1, _RNG_LINE)
    return newline.join(lines), applied


def apply_fixes(report, write=True):
    """Apply fixes for every finding in a LintReport, grouped by file.

    Returns ``{path: applied_count}`` for files that changed.  With
    ``write=False`` nothing touches disk (dry run).
    """
    by_path = {}
    for finding in report.findings:
        if finding.fix is not None and not finding.suppressed:
            by_path.setdefault(finding.path, []).append(finding)
    results = {}
    for path, findings in sorted(by_path.items()):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        new_source, applied = fix_source(source, findings)
        if applied and new_source != source:
            results[path] = applied
            if write:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(new_source)
    return results
