"""Schema-drift checks: config round-trip/digest and Metrics fields.

A new ``SimConfig`` knob that does not survive
``config_from_dict(config_to_dict(...))`` silently falls back to its
default in every cached / worker-process run; one that does not move
``config_digest`` lets the ``repro.jobs`` cache serve stale results for
a different configuration.  A new ``Metrics`` attribute missing from
``_FIELDS`` is dropped by serialization.  These checks derive the field
lists from the live dataclasses, so they can't go stale themselves.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect

from .linter import Finding


def _module_location(obj):
    """(path, lineno) of ``obj``'s source, best effort."""
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
    except TypeError:
        path = "<unknown>"
    try:
        _, line = inspect.getsourcelines(obj)
    except (OSError, TypeError):
        line = 1
    return path, line


def _perturb(value):
    """A value unequal to ``value`` but of the same JSON-able shape."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "_perturbed"
    if isinstance(value, tuple):
        return value + (len(value) + 1,)
    return None


def iter_leaf_fields(cls, prefix=""):
    """Yield dotted paths of every leaf (non-dataclass) config field.

    Nested config dataclasses are recognised by their default value (all
    of them use ``default_factory``), which sidesteps string annotations
    from ``from __future__ import annotations``.
    """
    for f in dataclasses.fields(cls):
        default = _field_default(f)
        if dataclasses.is_dataclass(default):
            yield from iter_leaf_fields(type(default), prefix + f.name + ".")
        else:
            yield prefix + f.name


def _field_default(f):
    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f.default_factory()
    return None


def _get_path(obj, dotted):
    for part in dotted.split("."):
        obj = getattr(obj, part)
    return obj


def _replace_path(config, dotted, value):
    """``dataclasses.replace`` along a dotted path."""
    parts = dotted.split(".")
    if len(parts) == 1:
        return dataclasses.replace(config, **{parts[0]: value})
    inner = _replace_path(getattr(config, parts[0]), ".".join(parts[1:]),
                          value)
    return dataclasses.replace(config, **{parts[0]: inner})


def check_config_schema():
    """Perturb every SimConfig leaf: round-trip + digest sensitivity."""
    from ..config import (SimConfig, config_digest, config_from_dict,
                          config_to_dict)

    findings = []
    path, line = _module_location(SimConfig)

    def fail(dotted, message):
        findings.append(Finding(
            rule="schema-roundtrip", path=path, line=line, col=0,
            message=f"SimConfig.{dotted}: {message}"))

    base = SimConfig()
    base_digest = config_digest(base)
    restored = config_from_dict(SimConfig, config_to_dict(base))
    if restored != base:
        fail("<all>", "default config does not survive dict round-trip")
        return findings
    for dotted in iter_leaf_fields(SimConfig):
        current = _get_path(base, dotted)
        perturbed_value = _perturb(current)
        if perturbed_value is None:
            fail(dotted, f"cannot perturb value of type "
                         f"{type(current).__name__}; extend "
                         f"analysis.schema._perturb")
            continue
        perturbed = _replace_path(base, dotted, perturbed_value)
        restored = config_from_dict(SimConfig, config_to_dict(perturbed))
        if _get_path(restored, dotted) != perturbed_value:
            fail(dotted, "field does not survive the dict round-trip "
                         "(config_from_dict drops or mangles it)")
        if config_digest(perturbed) == base_digest:
            fail(dotted, "field does not participate in config_digest; "
                         "the jobs cache would serve stale results")
    return findings


def check_metrics_schema(source=None, path=None):
    """Every ``self.X = ...`` in Metrics.__init__ must be in ``_FIELDS``.

    ``source`` / ``path`` exist for tests; by default the live
    ``repro.harness.metrics`` module is inspected.
    """
    from ..harness import metrics as metrics_module

    if source is None:
        path = inspect.getsourcefile(metrics_module)
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path or "<metrics>")

    declared = set(metrics_module._FIELDS) | {"config"}
    findings = []
    init = None
    for node in ast.walk(tree):
        if (isinstance(node, ast.ClassDef) and node.name == "Metrics"):
            init = next((item for item in node.body
                         if isinstance(item, ast.FunctionDef)
                         and item.name == "__init__"), None)
    if init is None:
        findings.append(Finding(
            rule="schema-roundtrip", path=path, line=1, col=0,
            message="Metrics.__init__ not found"))
        return findings

    assigned = {}
    for node in ast.walk(init):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                assigned.setdefault(target.attr, node.lineno)
    for name, lineno in sorted(assigned.items()):
        if name not in declared:
            findings.append(Finding(
                rule="schema-roundtrip", path=path, line=lineno, col=0,
                message=f"Metrics.{name} is assigned in __init__ but "
                        f"missing from _FIELDS; to_dict/from_dict will "
                        f"drop it"))
    for name in sorted(declared - set(assigned)):
        findings.append(Finding(
            rule="schema-roundtrip", path=path, line=init.lineno, col=0,
            message=f"Metrics._FIELDS lists '{name}' but __init__ never "
                    f"assigns it; from_dict round-trip would KeyError"))
    return findings
