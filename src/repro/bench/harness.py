"""Bench harness: cold timing, report files, regression comparison.

Methodology notes, learned the hard way:

* **Workload construction is excluded from timing.**  Graph builds are
  memoized in-process (``workloads.graphs._csr_cache``), so including
  them would charge the first configuration timed with the build and
  hand every later one a free ride.
* **GC is disabled inside the timed region** and a collection is forced
  right before it; the simulator allocates enough per cycle for
  collection pauses to dominate run-to-run variance otherwise.
* **Best-of-N** (``repeats``, default 3) guards against scheduler noise;
  wall times are minima, not means.
"""

from __future__ import annotations

import cProfile
import gc
import io
import json
import os
import platform
import pstats
import time

from ..harness.runner import build_sim
from .workloads import SCALE_INSTRUCTIONS, SMOKE_MATRIX, bench_config, \
    build_case

#: Schema 2 adds per-case sanitized timings (wall_s_sanitize /
#: sanitize_overhead) and the equivalent totals.  Schema 3 adds the
#: optional ``lanes_sweep`` section (batch-lane vs serial aggregate
#: wall-clock over the pinned lane matrix) and free-form ``notes``.
SCHEMA = 3
#: Regression gate metric: simulated cycles per host second, aggregated
#: over the matrix with fast-forward on (the configuration users run).
METRIC = "cycles_per_sec"


def _time_once(workload, config):
    """One cold simulation; returns (wall seconds, CoreStats)."""
    built = build_case(workload, config)
    core = build_sim(built, config)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        stats = core.run()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return wall, stats


def _time_best(workload, config, repeats):
    best, stats = _time_once(workload, config)
    for _ in range(repeats - 1):
        wall, stats = _time_once(workload, config)
        best = min(best, wall)
    return best, stats


def _profile_case(workload, config, top):
    """cProfile one run; returns the top-``top`` rows by cumulative time."""
    profiler = cProfile.Profile()
    profiler.enable()
    _time_once(workload, config)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    rows = []
    for func, (ccalls, ncalls, tottime, cumtime, _callers) in \
            sorted(stats.stats.items(), key=lambda kv: -kv[1][3])[:top]:
        filename, line, name = func
        rows.append({
            "function": f"{os.path.basename(filename)}:{line}({name})",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        })
    return rows


def run_lanes_sweep(lanes=8, step=None, progress=None):
    """Time the pinned lane matrix serial vs batched; returns a section.

    Protocol (warm/warm): graph generation is input loading, not
    simulation, so the in-process CSR cache is pre-warmed by building
    each template once before either side is timed.  The serial side is
    the executor's reference path (one :func:`run_spec` per spec); the
    batch side is one :class:`LaneBatch` over the same specs.  The two
    sides' Metrics are compared field-by-field -- a mismatch is a bug,
    not a statistic, and raises.
    """
    from ..harness.metrics import _FIELDS
    from ..harness.runner import build_spec_workload, run_spec
    from ..lanes import DEFAULT_STEP, LaneBatch, template_key
    from .workloads import lanes_sweep_specs

    if step is None:
        step = DEFAULT_STEP
    specs = lanes_sweep_specs()
    warmed = set()
    for spec in specs:
        key = template_key(spec)
        if key not in warmed:
            warmed.add(key)
            if progress:
                progress(f"lanes sweep: warming {spec.label} ...")
            build_spec_workload(spec)    # discarded; warms the CSR cache

    if progress:
        progress(f"lanes sweep: serial x{len(specs)} ...")
    gc.collect()
    start = time.perf_counter()
    serial = [run_spec(spec) for spec in specs]
    wall_serial = time.perf_counter() - start

    if progress:
        progress(f"lanes sweep: lanes={lanes} x{len(specs)} ...")
    batch = LaneBatch(specs, lanes=lanes, step=step)
    gc.collect()
    start = time.perf_counter()
    batched = batch.run()
    wall_lanes = time.perf_counter() - start

    for spec, reference, lane in zip(specs, serial, batched):
        if lane.status != "done":
            raise AssertionError(
                f"lanes sweep: {spec.label}/{spec.technique} failed in "
                f"the batch: {lane.error!r}")
        for name in _FIELDS:
            if getattr(reference, name) != getattr(lane.metrics, name):
                raise AssertionError(
                    f"lanes sweep: {spec.label}/{spec.technique} field "
                    f"{name!r} diverged: serial "
                    f"{getattr(reference, name)!r} vs lanes "
                    f"{getattr(lane.metrics, name)!r}")
    return {
        "lanes": lanes,
        "step": step,
        "specs": len(specs),
        "templates": len(warmed),
        "wall_s_serial": round(wall_serial, 4),
        "wall_s_lanes": round(wall_lanes, 4),
        "lanes_speedup": round(wall_serial / wall_lanes, 3),
        "identical": True,
    }


def run_bench(scale="smoke", repeats=3, fast_forward=True, profile=False,
              profile_top=15, matrix=None, progress=None, lanes=0):
    """Time the pinned matrix; returns the report dict.

    Each case is timed with fast-forward on *and* off so the report
    carries the speedup the event-driven scheduler delivers; the
    regression metric uses the ``fast_forward`` configuration (the one
    users actually run).  Each case is additionally timed with the
    runtime sanitizer enabled, so the report records the sanitize-on
    cost -- and the sanitized run doubles as a smoke check: it must
    produce exactly the same cycle/instruction counts as the timed run,
    with every assertion live.
    """
    if matrix is None:
        matrix = SMOKE_MATRIX
    instructions = SCALE_INSTRUCTIONS[scale]
    cases = []
    profiles = {}
    for workload, technique in matrix:
        label = f"{workload}/{technique}"
        if progress:
            progress(f"bench {label} ...")
        cfg_on = bench_config(technique, instructions, fast_forward=True)
        cfg_off = bench_config(technique, instructions, fast_forward=False)
        wall_off, _ = _time_best(workload, cfg_off, repeats)
        wall_on, core = _time_best(
            workload, cfg_on if fast_forward else cfg_off, repeats)
        cfg_san = bench_config(technique, instructions,
                               fast_forward=fast_forward, sanitize=True)
        wall_san, core_san = _time_best(workload, cfg_san, repeats)
        if (core_san.cycles, core_san.committed) != \
                (core.cycles, core.committed):
            raise AssertionError(
                f"sanitized run of {label} diverged: "
                f"{core_san.cycles}/{core_san.committed} vs "
                f"{core.cycles}/{core.committed} cycles/instructions")
        cases.append({
            "workload": workload,
            "technique": technique,
            "wall_s": round(wall_on, 4),
            "wall_s_no_ff": round(wall_off, 4),
            "ff_speedup": round(wall_off / wall_on, 3),
            "wall_s_sanitize": round(wall_san, 4),
            "sanitize_overhead": round(wall_san / wall_on, 3),
            "cycles": core.cycles,
            "instructions": core.committed,
            "cycles_per_sec": round(core.cycles / wall_on, 1),
            "instructions_per_sec": round(core.committed / wall_on, 1),
            "fast_forward_cycles": core.fast_forward_cycles,
            "fast_forward_spans": core.fast_forward_spans,
        })
        if profile:
            profiles[label] = _profile_case(
                workload, cfg_on if fast_forward else cfg_off, profile_top)

    wall = sum(c["wall_s"] for c in cases)
    wall_off = sum(c["wall_s_no_ff"] for c in cases)
    wall_san = sum(c["wall_s_sanitize"] for c in cases)
    cycles = sum(c["cycles"] for c in cases)
    committed = sum(c["instructions"] for c in cases)
    report = {
        "schema": SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "fast_forward": fast_forward,
        "host": {"python": platform.python_version(),
                 "platform": platform.platform()},
        "cases": cases,
        "totals": {
            "wall_s": round(wall, 4),
            "wall_s_no_ff": round(wall_off, 4),
            "ff_speedup": round(wall_off / wall, 3),
            "wall_s_sanitize": round(wall_san, 4),
            "sanitize_overhead": round(wall_san / wall, 3),
            "cycles": cycles,
            "instructions": committed,
            "cycles_per_sec": round(cycles / wall, 1),
            "instructions_per_sec": round(committed / wall, 1),
        },
    }
    if profiles:
        report["profiles"] = profiles
    if lanes:
        report["lanes_sweep"] = run_lanes_sweep(lanes=lanes,
                                                progress=progress)
    return report


# ----------------------------------------------------------------------
# Persistence + comparison
# ----------------------------------------------------------------------
def write_report(report, label, bench_dir="benchmarks"):
    os.makedirs(bench_dir, exist_ok=True)
    path = os.path.join(bench_dir, f"BENCH_{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path):
    with open(path) as handle:
        return json.load(handle)


def compare_reports(current, baseline, threshold_pct=25.0):
    """Regression check on aggregate cycles/sec.

    Returns ``(ok, lines)``: ``ok`` is False when throughput dropped by
    more than ``threshold_pct`` percent relative to the baseline.  Host
    differences between the machines that produced the two reports make
    small deltas meaningless -- hence a generous default threshold that
    only catches algorithmic regressions (e.g. the fast-forward path
    silently disabled), not micro-level drift.
    """
    lines = []
    cur = current["totals"][METRIC]
    base = baseline["totals"][METRIC]
    delta_pct = (cur - base) / base * 100.0
    lines.append(f"total {METRIC}: {cur:,.0f} vs baseline {base:,.0f} "
                 f"({delta_pct:+.1f}%)")
    base_cases = {(c["workload"], c["technique"]): c
                  for c in baseline["cases"]}
    for case in current["cases"]:
        ref = base_cases.get((case["workload"], case["technique"]))
        if ref is None:
            continue
        case_delta = (case[METRIC] - ref[METRIC]) / ref[METRIC] * 100.0
        lines.append(f"  {case['workload']}/{case['technique']}: "
                     f"{case[METRIC]:,.0f} vs {ref[METRIC]:,.0f} "
                     f"({case_delta:+.1f}%)")
    ok = delta_pct >= -threshold_pct
    if not ok:
        lines.append(f"REGRESSION: throughput dropped {-delta_pct:.1f}% "
                     f"(> {threshold_pct:.0f}% threshold)")
    cur_sweep = current.get("lanes_sweep")
    base_sweep = baseline.get("lanes_sweep")
    if cur_sweep and base_sweep:
        cur_speedup = cur_sweep["lanes_speedup"]
        base_speedup = base_sweep["lanes_speedup"]
        sweep_delta = (cur_speedup - base_speedup) / base_speedup * 100.0
        lines.append(f"lanes speedup: {cur_speedup:.2f}x vs baseline "
                     f"{base_speedup:.2f}x ({sweep_delta:+.1f}%)")
        if sweep_delta < -threshold_pct:
            ok = False
            lines.append(f"REGRESSION: lanes speedup dropped "
                         f"{-sweep_delta:.1f}% "
                         f"(> {threshold_pct:.0f}% threshold)")
    return ok, lines


def render_report(report):
    """Human-readable summary table."""
    lines = [f"bench scale={report['scale']} repeats={report['repeats']} "
             f"fast_forward={report['fast_forward']}"]
    header = (f"{'case':18s} {'wall_s':>8s} {'no_ff':>8s} {'speedup':>8s} "
              f"{'san':>7s} {'cyc/s':>12s} {'skip%':>6s}")
    lines.append(header)
    for case in report["cases"]:
        skip = (case["fast_forward_cycles"] / case["cycles"]
                if case["cycles"] else 0.0)
        san = case.get("sanitize_overhead")
        san_text = f"{san:6.2f}x" if san is not None else f"{'-':>7s}"
        lines.append(
            f"{case['workload'] + '/' + case['technique']:18s} "
            f"{case['wall_s']:8.3f} {case['wall_s_no_ff']:8.3f} "
            f"{case['ff_speedup']:7.2f}x {san_text} "
            f"{case['cycles_per_sec']:12,.0f} {skip:6.1%}")
    totals = report["totals"]
    total_san = totals.get("sanitize_overhead")
    total_san_text = (f"{total_san:6.2f}x" if total_san is not None
                      else f"{'-':>7s}")
    lines.append(
        f"{'TOTAL':18s} {totals['wall_s']:8.3f} "
        f"{totals['wall_s_no_ff']:8.3f} {totals['ff_speedup']:7.2f}x "
        f"{total_san_text} {totals['cycles_per_sec']:12,.0f}")
    sweep = report.get("lanes_sweep")
    if sweep:
        lines.append(
            f"lanes sweep: {sweep['specs']} spec(s) over "
            f"{sweep['templates']} template(s); serial "
            f"{sweep['wall_s_serial']:.2f}s, lanes={sweep['lanes']} "
            f"{sweep['wall_s_lanes']:.2f}s -> "
            f"{sweep['lanes_speedup']:.2f}x, "
            f"{'bit-identical' if sweep['identical'] else 'DIVERGED'}")
    for note in report.get("notes", []):
        lines.append(f"note: {note}")
    return "\n".join(lines)
