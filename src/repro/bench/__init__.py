"""Simulator performance benchmarking (``python -m repro bench``).

Times the simulator itself -- host wall-clock, not guest cycles -- over a
pinned memory-bound workload matrix, so that perf regressions in the core
loop are caught before they land.  Reports are JSON files
(``benchmarks/BENCH_<label>.json``) that later runs compare against with
a percentage regression threshold.
"""

from .harness import (compare_reports, load_report, render_report,
                      run_bench, run_lanes_sweep, write_report)
from .workloads import (SMOKE_MATRIX, bench_config, build_case, build_chase,
                        lanes_sweep_specs, register_lanes_graph)

__all__ = [
    "SMOKE_MATRIX",
    "bench_config",
    "build_case",
    "build_chase",
    "compare_reports",
    "lanes_sweep_specs",
    "load_report",
    "register_lanes_graph",
    "render_report",
    "run_bench",
    "run_lanes_sweep",
    "write_report",
]
