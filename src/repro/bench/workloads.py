"""The pinned bench matrix: memory-bound cases under a pinned profile.

The matrix exists to time the *simulator*, so it pins everything the
simulation depends on: workload parameters, seeds, and a memory-bound
configuration profile (small L2/L3, stride prefetcher off) that keeps the
cores in the latency-bound regime the paper targets -- exactly where
event-driven fast-forwarding pays off and where a regression in the
stall/skip path would show up first.

Besides the regular workloads the matrix includes ``chase``, a serial
pointer chase (``p = A[p]`` over a random cyclic permutation).  Every load
depends on the previous one, so there is no memory-level parallelism to
hide latency behind: CPI approaches the DRAM latency and nearly every
cycle is a stall.  It is the canonical memory-latency microbenchmark and
the worst case for a cycle-by-cycle simulator loop.
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..config import SimConfig
from ..isa.assembler import Assembler
from ..isa.machine import GuestMemory
from ..workloads import make_workload
from ..workloads.base import BuiltWorkload

#: (workload, technique) pairs timed by ``repro bench``.  ``chase``
#: dominates the wall-clock budget by design (see module docstring).
SMOKE_MATRIX = (
    ("chase", "ooo"),
    ("chase", "dvr"),
    ("camel", "ooo"),
    ("graph500", "ooo"),
)

#: Instruction budget per --scale choice.
SCALE_INSTRUCTIONS = {"smoke": 10_000, "small": 20_000, "full": 50_000}

_CHASE_MEMORY_BYTES = 8 * 1024 * 1024


def build_chase(entries=1 << 16, seed=7, memory_bytes=_CHASE_MEMORY_BYTES):
    """Serial pointer chase over a random cyclic permutation.

    A single cycle through all ``entries`` guarantees the working set is
    fully visited (no short cycles that would settle into the cache).
    """
    mem = GuestMemory(memory_bytes)
    rnd = random.Random(seed)
    perm = list(range(entries))
    rnd.shuffle(perm)
    nxt = [0] * entries
    for i in range(entries - 1):
        nxt[perm[i]] = perm[i + 1]
    nxt[perm[-1]] = perm[0]
    base = mem.alloc_array(nxt, "chase")

    a = Assembler("chase")
    for name, reg in [("rP", 1), ("rB", 2), ("rI", 3), ("rN", 4),
                      ("rC", 5)]:
        a.alias(name, reg)
    a.li("rB", base)
    a.li("rP", perm[0])
    a.li("rI", 0)
    a.li("rN", entries)
    a.label("loop")
    a.loadx("rP", "rB", "rP")         # p = A[p]: fully serial
    a.addi("rI", "rI", 1)
    a.cmplt("rC", "rI", "rN")
    a.bnz("rC", "loop")
    a.halt()
    return BuiltWorkload("chase", a.build(), mem,
                         metadata={"entries": entries, "seed": seed})


def bench_config(technique, instructions, fast_forward=True,
                 sanitize=False):
    """The pinned memory-bound profile for ``technique``.

    Shrinks L2/L3 well below the smoke working sets and disables the
    stride prefetcher so loads actually reach DRAM at smoke scale.
    """
    cfg = SimConfig(max_instructions=instructions,
                    fast_forward=fast_forward,
                    sanitize=sanitize).with_technique(technique)
    memsys = replace(cfg.memsys,
                     l2=replace(cfg.memsys.l2, size_bytes=32 * 1024),
                     l3=replace(cfg.memsys.l3, size_bytes=64 * 1024))
    return replace(cfg, memsys=memsys,
                   stride_pf=replace(cfg.stride_pf, enabled=False))


def build_case(workload, config, seed=12345):
    """Fresh :class:`BuiltWorkload` for a matrix entry (never cached)."""
    if workload == "chase":
        return build_chase()
    return make_workload(workload).build(
        memory_bytes=config.memsys.guest_memory_bytes, seed=seed)


# ----------------------------------------------------------------------
# The pinned batch-lane sweep (schema 3)
# ----------------------------------------------------------------------
#: One shared graph input for the lane sweep: a scale-18 RMAT with
#: Graph500 skew.  Big enough that building it (generation + CSR layout
#: + image fill, ~2.4s) dwarfs a short simulation -- the
#: regime where template sharing between lanes pays -- while its CSR
#: still fits a 64 MB guest image with room for vertex-sized kernel
#: arrays (bfs, pr; sssp's edge-sized weights array does not fit).
LANES_GRAPH = {"name": "KR18", "kind": "rmat", "log2_nodes": 18,
               "avg_degree": 16, "a": 0.57, "b": 0.19, "c": 0.19}

#: (workload, graph) cases of the lane sweep.
LANES_CASES = (("bfs", "KR18"), ("pr", "KR18"))

#: Techniques swept per case: the full comparison set plus the DVR
#: ablation variants -- sixteen sims per built workload template.
LANES_TECHNIQUES = ("ooo", "pre", "imp", "vr", "dvr", "dvr-offload",
                    "dvr-discovery", "oracle")

#: ROB sizes swept per technique (uarch axes multiply template sharing:
#: the config is not part of the build identity).
LANES_ROB_SIZES = (192, 320)

#: Short runs on purpose: the sweep isolates the construction overhead
#: that lanes amortize.  Long runs converge both sides to pure
#: simulation time (which is identical by design) and measure nothing.
LANES_INSTRUCTIONS = 1_000
LANES_SEED = 12345

#: Guest-image size for the lane sweep, applied to the serial baseline
#: and the batch alike.  Right-sizing matters: with N lanes co-resident,
#: image footprint -- not interleaving -- drives the batch's memory-system
#: cost (allocator churn, LLC/TLB pressure); 64 MB holds the KR18
#: working set with slack and keeps an 8-lane batch around half a GB.
LANES_MEMORY_BYTES = 64 * 1024 * 1024


def register_lanes_graph():
    """Install the sweep's graph input in the process-wide registry."""
    from ..workloads.graphs import GRAPH_INPUTS, GraphSpec
    if LANES_GRAPH["name"] not in GRAPH_INPUTS:
        GRAPH_INPUTS[LANES_GRAPH["name"]] = GraphSpec(**LANES_GRAPH)


def lanes_sweep_specs():
    """JobSpecs of the pinned lane sweep, grouped by build template.

    2 cases x 8 techniques x 2 ROB sizes = 32 sims over 2 templates.
    Specs sharing a template are adjacent, so a lane batch builds each
    workload once and clones it for the other fifteen lanes.
    """
    from ..jobs.spec import JobSpec
    register_lanes_graph()
    specs = []
    for workload, graph in LANES_CASES:
        for technique in LANES_TECHNIQUES:
            for rob in LANES_ROB_SIZES:
                cfg = bench_config(technique, LANES_INSTRUCTIONS)
                cfg = replace(
                    cfg,
                    core=replace(cfg.core, rob_size=rob),
                    memsys=replace(cfg.memsys,
                                   guest_memory_bytes=LANES_MEMORY_BYTES))
                specs.append(JobSpec(workload, cfg,
                                     params={"graph": graph},
                                     seed=LANES_SEED,
                                     label=f"{workload}_{graph}_rob{rob}"))
    return specs
