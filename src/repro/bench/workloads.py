"""The pinned bench matrix: memory-bound cases under a pinned profile.

The matrix exists to time the *simulator*, so it pins everything the
simulation depends on: workload parameters, seeds, and a memory-bound
configuration profile (small L2/L3, stride prefetcher off) that keeps the
cores in the latency-bound regime the paper targets -- exactly where
event-driven fast-forwarding pays off and where a regression in the
stall/skip path would show up first.

Besides the regular workloads the matrix includes ``chase``, a serial
pointer chase (``p = A[p]`` over a random cyclic permutation).  Every load
depends on the previous one, so there is no memory-level parallelism to
hide latency behind: CPI approaches the DRAM latency and nearly every
cycle is a stall.  It is the canonical memory-latency microbenchmark and
the worst case for a cycle-by-cycle simulator loop.
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..config import SimConfig
from ..isa.assembler import Assembler
from ..isa.machine import GuestMemory
from ..workloads import make_workload
from ..workloads.base import BuiltWorkload

#: (workload, technique) pairs timed by ``repro bench``.  ``chase``
#: dominates the wall-clock budget by design (see module docstring).
SMOKE_MATRIX = (
    ("chase", "ooo"),
    ("chase", "dvr"),
    ("camel", "ooo"),
    ("graph500", "ooo"),
)

#: Instruction budget per --scale choice.
SCALE_INSTRUCTIONS = {"smoke": 10_000, "small": 20_000, "full": 50_000}

_CHASE_MEMORY_BYTES = 8 * 1024 * 1024


def build_chase(entries=1 << 16, seed=7, memory_bytes=_CHASE_MEMORY_BYTES):
    """Serial pointer chase over a random cyclic permutation.

    A single cycle through all ``entries`` guarantees the working set is
    fully visited (no short cycles that would settle into the cache).
    """
    mem = GuestMemory(memory_bytes)
    rnd = random.Random(seed)
    perm = list(range(entries))
    rnd.shuffle(perm)
    nxt = [0] * entries
    for i in range(entries - 1):
        nxt[perm[i]] = perm[i + 1]
    nxt[perm[-1]] = perm[0]
    base = mem.alloc_array(nxt, "chase")

    a = Assembler("chase")
    for name, reg in [("rP", 1), ("rB", 2), ("rI", 3), ("rN", 4),
                      ("rC", 5)]:
        a.alias(name, reg)
    a.li("rB", base)
    a.li("rP", perm[0])
    a.li("rI", 0)
    a.li("rN", entries)
    a.label("loop")
    a.loadx("rP", "rB", "rP")         # p = A[p]: fully serial
    a.addi("rI", "rI", 1)
    a.cmplt("rC", "rI", "rN")
    a.bnz("rC", "loop")
    a.halt()
    return BuiltWorkload("chase", a.build(), mem,
                         metadata={"entries": entries, "seed": seed})


def bench_config(technique, instructions, fast_forward=True,
                 sanitize=False):
    """The pinned memory-bound profile for ``technique``.

    Shrinks L2/L3 well below the smoke working sets and disables the
    stride prefetcher so loads actually reach DRAM at smoke scale.
    """
    cfg = SimConfig(max_instructions=instructions,
                    fast_forward=fast_forward,
                    sanitize=sanitize).with_technique(technique)
    memsys = replace(cfg.memsys,
                     l2=replace(cfg.memsys.l2, size_bytes=32 * 1024),
                     l3=replace(cfg.memsys.l3, size_bytes=64 * 1024))
    return replace(cfg, memsys=memsys,
                   stride_pf=replace(cfg.stride_pf, enabled=False))


def build_case(workload, config, seed=12345):
    """Fresh :class:`BuiltWorkload` for a matrix entry (never cached)."""
    if workload == "chase":
        return build_chase()
    return make_workload(workload).build(
        memory_bytes=config.memsys.guest_memory_bytes, seed=seed)
