"""Configuration dataclasses for the whole simulator.

:func:`paper_config` reproduces Table 1 of the paper (the baseline OoO
core inspired by Intel Ice Lake, simulated at 4 GHz).
"""

from __future__ import annotations

import hashlib
import json
import typing
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace


# Technique identifiers (see repro.harness.runner for dispatch)
TECH_OOO = "ooo"            # baseline out-of-order core (stride pf only)
TECH_PRE = "pre"            # Precise Runahead Execution
TECH_IMP = "imp"            # Indirect Memory Prefetcher at L1-D
TECH_VR = "vr"              # Vector Runahead
TECH_DVR = "dvr"            # Decoupled Vector Runahead (full)
TECH_DVR_OFFLOAD = "dvr-offload"      # Fig 8: offload only (no discovery)
TECH_DVR_DISCOVERY = "dvr-discovery"  # Fig 8: offload + discovery (no nested)
TECH_ORACLE = "oracle"      # perfect prefetching

ALL_TECHNIQUES = (TECH_OOO, TECH_PRE, TECH_IMP, TECH_VR, TECH_DVR,
                  TECH_ORACLE)
DVR_BREAKDOWN = (TECH_VR, TECH_DVR_OFFLOAD, TECH_DVR_DISCOVERY, TECH_DVR)


@dataclass
class FuncUnit:
    """One class of functional unit: ``count`` units of ``latency`` cycles."""

    count: int
    latency: int


@dataclass
class CoreConfig:
    """Out-of-order core parameters (paper Table 1)."""

    frequency_ghz: float = 4.0
    width: int = 5                   # fetch/dispatch/rename/commit width
    rob_size: int = 350
    issue_queue_size: int = 128
    load_queue_size: int = 128
    store_queue_size: int = 72
    frontend_stages: int = 15        # misprediction redirect penalty
    fetch_buffer_size: int = 8       # decoded micro-op buffer (DVR reuses it)
    int_alu: FuncUnit = field(default_factory=lambda: FuncUnit(4, 1))
    int_mul: FuncUnit = field(default_factory=lambda: FuncUnit(1, 3))
    int_div: FuncUnit = field(default_factory=lambda: FuncUnit(1, 18))
    mem_ports: int = 2               # load/store issue ports
    phys_int_regs: int = 256
    phys_vec_regs: int = 128


@dataclass
class CacheConfig:
    size_bytes: int
    assoc: int
    latency: int                     # access latency in cycles
    line_bytes: int = 64

    @property
    def num_sets(self):
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass
class MemSysConfig:
    """Memory hierarchy parameters (paper Table 1)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 2))
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, 8))
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * 1024 * 1024, 16, 30))
    l1d_mshrs: int = 24
    dram_latency_cycles: int = 200   # 50 ns at 4 GHz
    # 51.2 GB/s at 4 GHz = 12.8 B/cycle -> one 64 B line per 5 cycles
    dram_line_interval: int = 5
    guest_memory_bytes: int = 256 * 1024 * 1024


@dataclass
class StridePrefetcherConfig:
    """Always-on L1-D stride prefetcher (16 streams, paper Table 1)."""

    enabled: bool = True
    streams: int = 16
    degree: int = 2                  # prefetches issued per trigger
    distance: int = 4                # how far ahead (in strides)
    train_threshold: int = 2         # identical strides before prefetching


@dataclass
class ImpConfig:
    """Indirect Memory Prefetcher (Yu et al., MICRO 2015), at L1-D."""

    enabled: bool = False
    table_entries: int = 16
    candidates: int = 4              # (base, shift) candidates per entry
    distance: int = 16               # index-stream lookahead
    degree: int = 4                  # indirect prefetches per trigger
    confidence_threshold: int = 2


@dataclass
class BranchConfig:
    """TAGE-lite predictor sized to roughly 8 KB."""

    bimodal_bits: int = 12           # 4096-entry base predictor
    tagged_tables: int = 4
    tagged_bits: int = 10            # 1024 entries per tagged table
    tag_bits: int = 9
    history_lengths: tuple = (4, 8, 16, 32)
    btb_bits: int = 11


@dataclass
class RunaheadConfig:
    """Parameters shared by PRE and VR (stall-triggered runahead)."""

    # A load blocking the ROB head counts as "long-latency" if its
    # remaining latency exceeds this (i.e., it missed beyond the L2).
    long_latency_threshold: int = 30
    pre_max_instructions: int = 512  # PRE future-walk budget per interval
    vr_lanes: int = 64               # VR vectorization degree (no bounds info)
    vr_max_chain: int = 64           # instructions followed past stride load
    # Cycles VR may keep stalling commit after the blocking load returns,
    # to finish generating the chain's accesses (the paper observes this
    # "delayed termination" costs 7.1% of time on average, 11.8% max --
    # so it is bounded in hardware too).
    vr_termination_grace: int = 100


@dataclass
class DvrConfig:
    """Decoupled Vector Runahead parameters (paper Section 4)."""

    max_lanes: int = 128             # scalar-equivalent lanes per invocation
    vector_width: int = 8            # lanes per AVX-512-style register
    vector_copies: int = 16          # VIR capacity: 16 x 8 = 128 lanes
    stride_detector_entries: int = 32
    stride_confidence: int = 2       # 2-bit saturating counter threshold
    reconvergence_depth: int = 8
    subthread_timeout: int = 200     # instructions per invocation
    ndm_threshold: int = 64          # enter nested mode below this bound
    ndm_scan_limit: int = 200        # instrs to find the outer stride
    ndm_outer_lanes: int = 16
    # Ablation switches (Fig 8): full DVR has both enabled.
    discovery_enabled: bool = True
    nested_enabled: bool = True


@dataclass
class SimConfig:
    """Everything needed to run one simulation."""

    technique: str = TECH_OOO
    core: CoreConfig = field(default_factory=CoreConfig)
    memsys: MemSysConfig = field(default_factory=MemSysConfig)
    stride_pf: StridePrefetcherConfig = field(
        default_factory=StridePrefetcherConfig)
    imp: ImpConfig = field(default_factory=ImpConfig)
    branch: BranchConfig = field(default_factory=BranchConfig)
    runahead: RunaheadConfig = field(default_factory=RunaheadConfig)
    dvr: DvrConfig = field(default_factory=DvrConfig)
    max_instructions: int = 50_000   # ROI length (committed instructions)
    warmup_instructions: int = 0     # committed instrs before stats reset
    # Event-driven cycle skipping: when the core and engine are quiescent
    # (nothing can writeback, issue, dispatch, or commit) the simulator
    # jumps straight to the next scheduled event instead of iterating
    # cycle-by-cycle.  Metrics are bit-identical either way; turning it
    # off exists to prove exactly that (tests/test_fast_forward.py).
    fast_forward: bool = True
    # Runtime sanitizer (repro.analysis.sanitize): invariant assertions
    # wired into the core, memory hierarchy and DVR subthread.  Pure
    # observation -- metrics are bit-identical with it on or off; a
    # violation raises SanitizerError instead of corrupting results.
    sanitize: bool = False

    def with_technique(self, technique):
        """A copy of this config running ``technique``."""
        config = replace(self, technique=technique)
        if technique == TECH_IMP:
            config = replace(config, imp=replace(self.imp, enabled=True))
        if technique == TECH_DVR_OFFLOAD:
            config = replace(config, dvr=replace(
                self.dvr, discovery_enabled=False, nested_enabled=False))
        elif technique == TECH_DVR_DISCOVERY:
            config = replace(config, dvr=replace(
                self.dvr, discovery_enabled=True, nested_enabled=False))
        elif technique == TECH_DVR:
            config = replace(config, dvr=replace(
                self.dvr, discovery_enabled=True, nested_enabled=True))
        return config

    def with_rob(self, rob_size, scale_backend=False):
        """A copy with a different ROB size (Fig 2 / Fig 12 sweeps).

        With ``scale_backend`` the queue sizes scale proportionally, as in
        the paper's back-end-scaling sensitivity experiment.
        """
        core = replace(self.core, rob_size=rob_size)
        if scale_backend:
            ratio = rob_size / self.core.rob_size
            core = replace(
                core,
                issue_queue_size=max(16, round(self.core.issue_queue_size * ratio)),
                load_queue_size=max(16, round(self.core.load_queue_size * ratio)),
                store_queue_size=max(8, round(self.core.store_queue_size * ratio)),
            )
        return replace(self, core=core)


def config_to_dict(config):
    """``SimConfig`` (or any nested config dataclass) as plain dicts."""
    return asdict(config)


def config_from_dict(cls, data):
    """Rebuild a config dataclass from :func:`config_to_dict` output.

    Works for any of the config dataclasses here: nested dataclass fields
    recurse, tuple-annotated fields are restored from JSON lists.
    """
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        hint = hints.get(f.name)
        if is_dataclass(hint) and isinstance(value, dict):
            value = config_from_dict(hint, value)
        elif hint is tuple and isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


def config_digest(config):
    """Stable content hash of a config (hex string).

    Two structurally-equal configs always hash alike, across processes
    and interpreter runs -- the basis of the ``repro.jobs`` cache key.
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True,
                           default=list)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def paper_config(technique=TECH_OOO, max_instructions=50_000):
    """The paper's Table 1 baseline configuration."""
    return SimConfig(max_instructions=max_instructions).with_technique(technique)


def table1_rows(config=None):
    """Table 1 as (parameter, value) rows for reporting."""
    config = config or paper_config()
    core, mem = config.core, config.memsys
    return [
        ("Core", f"{core.frequency_ghz:.1f} GHz, out-of-order"),
        ("ROB size", str(core.rob_size)),
        ("Queue sizes",
         f"issue ({core.issue_queue_size}), load ({core.load_queue_size}), "
         f"store ({core.store_queue_size})"),
        ("Processor width",
         f"{core.width}-wide fetch/dispatch/rename/commit"),
        ("Pipeline depth", f"{core.frontend_stages} front-end stages"),
        ("Branch predictor", "8 KB TAGE-SC-L (TAGE-lite model)"),
        ("Functional units",
         f"{core.int_alu.count} int add ({core.int_alu.latency} cycle), "
         f"{core.int_mul.count} int mult ({core.int_mul.latency} cycles), "
         f"{core.int_div.count} int div ({core.int_div.latency} cycles)"),
        ("Register file",
         f"{core.phys_int_regs} int (64 bit), "
         f"{core.phys_vec_regs} vector (512 bit)"),
        ("L1 I-cache",
         f"{mem.l1i.size_bytes // 1024} KB, assoc {mem.l1i.assoc}, "
         f"{mem.l1i.latency}-cycle access"),
        ("L1 D-cache",
         f"{mem.l1d.size_bytes // 1024} KB, assoc {mem.l1d.assoc}, "
         f"{mem.l1d.latency}-cycle access, {mem.l1d_mshrs} MSHRs, "
         f"stride prefetcher ({config.stride_pf.streams} streams)"),
        ("Private L2 cache",
         f"{mem.l2.size_bytes // 1024} KB, assoc {mem.l2.assoc}, "
         f"{mem.l2.latency}-cycle access"),
        ("Shared L3 cache",
         f"{mem.l3.size_bytes // (1024 * 1024)} MB, assoc {mem.l3.assoc}, "
         f"{mem.l3.latency}-cycle access"),
        ("Memory",
         f"{mem.dram_latency_cycles} cycles min. latency "
         f"(50 ns at 4 GHz), 51.2 GB/s bandwidth, "
         "request-based contention model"),
    ]
