"""End-to-end chaos run: the whole fault matrix over a loopback cluster.

``repro chaos --seed S`` drives this module.  One run:

1. executes a pinned smoke sweep serially with no faults (the baseline);
2. re-executes it on a loopback coordinator + in-process workers with
   every seam wrapped by a :class:`FaultInjector` (authenticated with a
   shared secret, so the auth path is exercised too), recording the
   :class:`FaultPlan` into the run ledger before the first job;
3. re-executes it once more through the resume path, over the damaged
   cache and torn ledger the chaos pass left behind;
4. verifies both surviving result sets are bit-identical to the
   baseline, and that a stale-salt or wrong-secret worker never joins.

The fault schedule is content-keyed on the plan seed, so the same
``--seed`` replays the same faults bit-identically.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
import warnings

from ..config import SimConfig, TECH_DVR, TECH_OOO
from ..jobs import (Executor, JobSpec, NullCache, NullLedger, ResultCache,
                    RunLedger)
from .inject import FaultInjector, WorkerCrash
from .plan import FaultPlan

#: (workload, technique, seed) triples of the pinned chaos smoke sweep.
_CHAOS_POINTS = (
    ("nas-is", TECH_OOO, 101),
    ("kangaroo", TECH_OOO, 102),
    ("randomaccess", TECH_OOO, 103),
    ("nas-is", TECH_DVR, 104),
    ("camel", TECH_OOO, 105),
    ("kangaroo", TECH_DVR, 106),
)


class _SilentProgress:
    def update(self, done, total, spec, cached):
        pass

    def finish(self, total, cached, wall_s):
        pass


def chaos_specs(count=None, max_instructions=1_200):
    """The pinned smoke sweep every chaos run executes."""
    points = _CHAOS_POINTS[:count] if count else _CHAOS_POINTS
    return [JobSpec(workload=workload, params={},
                    config=SimConfig(max_instructions=max_instructions
                                     ).with_technique(technique),
                    seed=seed)
            for workload, technique, seed in points]


def _canonical(metrics):
    return json.dumps(metrics.to_dict(), sort_keys=True)


def _match(baseline, results):
    """(identical, holes): bit-compare, ignoring gave-up (None) slots."""
    holes = sum(1 for metrics in results if metrics is None)
    identical = all(metrics is None or _canonical(metrics) == _canonical(
        expected) for expected, metrics in zip(baseline, results))
    return identical, holes


def run_chaos(seed, cache_dir=None, *, workers=3, count=None, plan=None,
              secret="chaos-secret", stream=None):
    """Run the fault matrix end-to-end; returns the report dict.

    The report's ``ok`` field is the overall verdict: every surviving
    result bit-identical to the fault-free baseline, unauthenticated /
    stale workers rejected, and the resume pass healed the damaged
    persistence layer.
    """
    from ..cluster import ClusterExecutor, Coordinator, Worker, query_status
    from ..harness.runner import run_spec

    stream = stream if stream is not None else sys.stderr
    plan = plan if plan is not None else FaultPlan.standard(seed)
    if plan.seed != int(seed):
        raise ValueError(f"plan seed {plan.seed} != --seed {seed}")
    scratch = None
    if cache_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        cache_dir = scratch.name

    def log(text):
        print(f"[chaos] {text}", file=stream, flush=True)

    try:
        specs = chaos_specs(count)
        log(f"seed {plan.seed}: {len(specs)} spec(s), "
            f"{len(plan.rules)} armed fault rule(s)")

        # -- 1. fault-free serial baseline -----------------------------
        baseline = Executor(jobs=1, cache=NullCache(), ledger=NullLedger(),
                            progress=_SilentProgress()).run(specs)
        log("baseline: fault-free serial sweep done")

        # -- 2. chaos pass over an authenticated loopback cluster ------
        injector = FaultInjector(plan)
        ledger_path = os.path.join(cache_dir, "runs.jsonl")
        ledger = injector.wrap_ledger(RunLedger(ledger_path))
        cache = injector.wrap_cache(ResultCache(cache_dir))
        ledger.record_meta("chaos-plan", seed=plan.seed, plan=plan.to_dict())

        coordinator = Coordinator(job_timeout=2.5, heartbeat_timeout=2.5,
                                  retry_base=0.05, retry_cap=0.2,
                                  max_attempts=8, worker_grace=30.0,
                                  secret=secret)
        coordinator.start()
        address = f"127.0.0.1:{coordinator.port}"
        stop = threading.Event()

        def worker_kwargs(worker_id):
            return dict(worker_id=worker_id, run_job=run_spec,
                        secret=secret, injector=injector, quiet=True,
                        heartbeat_interval=0.5, socket_timeout=1.0,
                        coordinator_timeout=6.0, reconnect=0)

        def rejoin_loop(worker_id):
            # Crashed / partitioned / disconnected workers dial back in,
            # like a supervised fleet would, until the run is over.
            while not stop.is_set():
                worker = Worker(address, **worker_kwargs(worker_id))
                try:
                    code = worker.serve()
                except WorkerCrash:
                    continue
                if code == 2:        # rejected: config problem, stay out
                    return
                time.sleep(0.05)

        threads = [threading.Thread(target=rejoin_loop, args=(f"chaos-w{i}",),
                                    daemon=True) for i in range(workers)]
        for thread in threads:
            thread.start()
        coordinator.wait_for_workers(workers, timeout=30)

        # Hostile dialers must bounce off the handshake, not join.
        stale = Worker(address, salt="stale-tree",
                       **{**worker_kwargs("stale-w"), "injector": None})
        stale_rejected = stale.serve() == 2 and not any(
            w.label == "stale-w" for w in coordinator.live_workers())
        bad_secret = Worker(address, **{**worker_kwargs("intruder-w"),
                                        "secret": secret + "-wrong",
                                        "injector": None})
        intruder_rejected = bad_secret.serve() == 2 and not any(
            w.label == "intruder-w" for w in coordinator.live_workers())
        log(f"handshake: stale-salt rejected={stale_rejected}, "
            f"wrong-secret rejected={intruder_rejected}")

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            executor = ClusterExecutor(coordinator, cache=cache,
                                       ledger=ledger, on_failure="report",
                                       progress=_SilentProgress())
            chaos_results = executor.run(specs)
        status = query_status(address, secret=secret)
        stop.set()
        coordinator.close()
        for thread in threads:
            thread.join(timeout=5)

        chaos_identical, chaos_holes = _match(baseline, chaos_results)
        fired = injector.summary()
        log(f"chaos pass: identical={chaos_identical}, "
            f"gave-up={chaos_holes}, faults fired: "
            + (", ".join(f"{site} x{n}" for site, n in sorted(fired.items()))
               or "none"))

        # -- 3. resume pass over the damaged cache + torn ledger -------
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resume_index = RunLedger.completed_index(ledger_path)
            resume_cache = ResultCache(cache_dir)
            resume_results = Executor(
                jobs=1, cache=resume_cache,
                ledger=RunLedger(ledger_path), on_failure="report",
                resume_index=resume_index,
                progress=_SilentProgress()).run(specs)
            records = RunLedger.read(ledger_path)
        resume_identical, resume_holes = _match(baseline, resume_results)
        replayed = sum(1 for r in records if r.get("cache") == "resume")
        log(f"resume pass: identical={resume_identical}, "
            f"{replayed} replayed from the ledger, "
            f"{len(caught)} degradation warning(s), "
            f"{resume_cache.corrupt} corrupt cache entr(ies) healed")

        failures = executor.failure_report
        ok = (chaos_identical and resume_identical and chaos_holes == 0
              and resume_holes == 0 and stale_rejected and intruder_rejected)
        report = {
            "seed": plan.seed,
            "ok": ok,
            "specs": len(specs),
            "plan": plan.to_dict(),
            "schedule": injector.schedule(),
            "faults_fired": fired,
            "chaos_identical": chaos_identical,
            "resume_identical": resume_identical,
            "gave_up": chaos_holes + resume_holes,
            "stale_salt_rejected": stale_rejected,
            "wrong_secret_rejected": intruder_rejected,
            "resume_replayed": replayed,
            "corrupt_cache_entries": resume_cache.corrupt,
            "workers_seen": len(status.get("workers", [])),
            "failure_report": failures.to_dict(),
        }
        ledger.record_meta("chaos-report",
                           **{key: report[key] for key in
                              ("seed", "ok", "schedule", "faults_fired",
                               "chaos_identical", "resume_identical",
                               "gave_up")})
        log("PASS" if ok else "FAIL")
        if failures:
            log(failures.render())
        return report
    finally:
        if scratch is not None:
            scratch.cleanup()
