"""Deterministic fault injection for the sweep execution stack.

``repro.faults`` wraps the seams the execution engine already exposes --
the cluster :class:`~repro.cluster.protocol.Connection`, the worker job
loop, the :class:`~repro.jobs.cache.ResultCache` and the JSONL
:class:`~repro.jobs.ledger.RunLedger` -- with a schedule of injected
faults driven by a :class:`FaultPlan` (a seed plus per-site rules).

Decisions are *content-keyed*: whether a fault fires at a site is a pure
function of ``(seed, site, identity)`` where the identity is the job key
or spec hash, never a wall-clock or thread-interleaving artifact.  The
same plan therefore reproduces the same fault schedule bit-identically
across runs, no matter how the distributed races resolve -- which is
what makes a failing chaos run replayable.  Each probabilistic fault
fires only on the *first* occurrence of its identity, so the recovery
path (retry, reassignment, re-simulation) is guaranteed to make
progress.

``repro chaos --seed S`` runs the whole matrix end-to-end over loopback
(:func:`run_chaos`) and verifies the surviving sweep is bit-identical to
a fault-free serial run.
"""

from .inject import (FaultInjector, FaultyConnection, WorkerCrash,
                     KNOWN_SITES)
from .plan import FaultPlan, FaultRule
from .chaos import chaos_specs, run_chaos

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyConnection",
    "KNOWN_SITES",
    "WorkerCrash",
    "chaos_specs",
    "run_chaos",
]
