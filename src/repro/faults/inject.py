"""The fault injector and the seam wrappers it hands out.

One :class:`FaultInjector` is shared by every wrapped seam of a chaos
run (all worker connections, the cache, the ledger).  All decisions
funnel through :meth:`FaultInjector.decide`, which is content-keyed --
``sha256(seed | site | identity)`` against the rule's probability -- so
the schedule is a pure function of the plan and the spec set, immune to
thread interleaving and retry races.  A probabilistic fault fires only
on the first occurrence of its identity: the retry that follows is
guaranteed to pass the same site, so every injected failure converges.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time

from .plan import FaultPlan, KNOWN_SITES  # noqa: F401  (re-exported)


class WorkerCrash(BaseException):
    """Simulated hard worker death (SIGKILL-equivalent).

    Deliberately a ``BaseException``: the worker's job loop catches
    ``Exception`` to report job failures as ``RESULT {ok: false}``
    without dying, and a *crash* must not be reported -- it has to rip
    straight through the loop like a real kill would, closing the
    connection mid-lease so the coordinator's reassignment path is
    exercised.
    """


def _fraction(seed, site, ident):
    """Deterministic uniform-[0,1) draw keyed on (seed, site, ident)."""
    digest = hashlib.sha256(f"{seed}|{site}|{ident}".encode()).hexdigest()
    return int(digest[:12], 16) / float(16 ** 12)


class FaultInjector:
    """Decides, logs, and applies the faults of one chaos run."""

    def __init__(self, plan):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        self.plan = plan
        self._lock = threading.Lock()
        self._occurrences = {}       # site -> count seen (for `at` rules)
        self._fired_once = set()     # (site, ident) that already fired
        self._log = []               # chronological fired-fault records

    # -- decision core -------------------------------------------------
    def decide(self, site, ident):
        """Should ``site`` fault for ``ident``?  Returns the rule or None.

        Thread-safe; increments the site occurrence counter either way.
        Probabilistic rules fire at most once per ``(site, ident)`` so
        retries of the same job/spec always make progress.
        """
        with self._lock:
            occurrence = self._occurrences.get(site, 0)
            self._occurrences[site] = occurrence + 1
            for rule in self.plan.rules_for(site):
                if occurrence in rule.at:
                    pass             # explicit trigger: fire regardless
                elif (site, ident) in self._fired_once:
                    continue
                elif not (rule.probability
                          and _fraction(self.plan.seed, site, ident)
                          < rule.probability):
                    continue
                self._fired_once.add((site, ident))
                self._log.append({"site": site, "ident": ident,
                                  "occurrence": occurrence})
                return rule
        return None

    def schedule(self):
        """The fired faults as a canonical (sorted) ``site:ident`` list.

        Chronological order varies with thread races; the *set* of fired
        faults does not, so this sorted view is the replayable schedule
        two same-seed runs are compared on.
        """
        with self._lock:
            return sorted(f"{entry['site']}:{entry['ident']}"
                          for entry in self._log)

    def fired(self):
        with self._lock:
            return list(self._log)

    def summary(self):
        counts = {}
        for entry in self.fired():
            counts[entry["site"]] = counts.get(entry["site"], 0) + 1
        return counts

    # -- worker seam ---------------------------------------------------
    def worker_enter(self, job_id):
        """Called as a worker starts a lease: stall or crash pre-result."""
        rule = self.decide("worker.stall", job_id)
        if rule is not None:
            time.sleep(rule.param if rule.param is not None else 3.0)
        if self.decide("worker.crash-before-result", job_id) is not None:
            raise WorkerCrash(f"injected crash before result of {job_id}")

    def worker_exit(self, job_id):
        """Called after the RESULT frame went out: crash post-result."""
        if self.decide("worker.crash-after-result", job_id) is not None:
            raise WorkerCrash(f"injected crash after result of {job_id}")

    # -- seam wrappers -------------------------------------------------
    def wrap_connection(self, connection, scope=""):
        return FaultyConnection(connection, self, scope=scope)

    def wrap_cache(self, cache):
        return FaultyCache(cache, self)

    def wrap_ledger(self, ledger):
        return FaultyLedger(ledger, self)


class FaultyConnection:
    """A :class:`~repro.cluster.protocol.Connection` with send faults.

    Only *job-carrying* frames (those with a ``job_id`` field, i.e.
    ``RESULT``) are fault candidates, identified as ``"<type>:<job_id>"``
    -- handshake and heartbeat frames pass through untouched, which
    keeps the schedule content-keyed (heartbeat counts are timing
    noise).  Receive-direction faults are covered by the peer's send
    side and by the worker/coordinator timeout machinery.
    """

    def __init__(self, connection, injector, scope=""):
        self._inner = connection
        self._injector = injector
        self._scope = scope
        self._partitioned = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def recv(self):
        return self._inner.recv()

    def close(self):
        self._inner.close()

    def send(self, message_type, **fields):
        if self._partitioned:
            return                   # one-way partition swallows everything
        job_id = fields.get("job_id")
        if job_id is None:
            return self._inner.send(message_type, **fields)
        ident = f"{message_type}:{job_id}"
        decide = self._injector.decide
        rule = decide("conn.partition", ident)
        if rule is not None:
            # From this frame on, nothing we send arrives; we still
            # receive.  The peer's heartbeat/lease timeouts must notice.
            self._partitioned = True
            return
        if decide("conn.drop", ident) is not None:
            return                   # this frame silently vanishes
        rule = decide("conn.delay", ident)
        if rule is not None:
            time.sleep(rule.param if rule.param is not None else 0.2)
        if decide("conn.truncate", ident) is not None:
            return self._send_mangled(message_type, fields, truncate=True)
        if decide("conn.corrupt", ident) is not None:
            return self._send_mangled(message_type, fields, truncate=False)
        return self._inner.send(message_type, **fields)

    def _send_mangled(self, message_type, fields, *, truncate):
        """Emit a damaged frame; framing (not luck) must reject it.

        Truncation sends half the frame then closes, desynchronizing
        the stream; corruption keeps the length header but inverts the
        payload bytes, guaranteeing undecodable JSON.  Either way the
        peer sees ``ProtocolError``, never silently-wrong data.
        """
        from ..cluster.protocol import _HEADER, encode
        message = {"type": message_type}
        message.update(fields)
        frame = encode(message)
        sock = self._inner.sock
        with self._inner._send_lock:
            try:
                if truncate:
                    sock.sendall(frame[:max(_HEADER.size, len(frame) // 2)])
                else:
                    header, payload = frame[:_HEADER.size], \
                        frame[_HEADER.size:]
                    sock.sendall(header
                                 + bytes(b ^ 0xFF for b in payload))
            except OSError:
                pass                 # already dead; same outcome
        if truncate:
            self._inner.close()


class FaultyCache:
    """A :class:`ResultCache` whose freshly-written entries can rot.

    Damage is applied *after* a successful ``put`` -- the in-memory
    sweep result is untouched; what's tested is that the next reader
    hits the checksum gate and degrades to a miss instead of consuming
    garbage.
    """

    def __init__(self, cache, injector):
        self._inner = cache
        self._injector = injector

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def get(self, spec):
        return self._inner.get(spec)

    def put(self, spec, metrics):
        self._inner.put(spec, metrics)
        path = self._inner._path(spec)
        if self._injector.decide("cache.truncate", spec.key) is not None:
            self._damage(path, truncate=True)
        if self._injector.decide("cache.corrupt", spec.key) is not None:
            self._damage(path, truncate=False)

    @staticmethod
    def _damage(path, *, truncate):
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                if truncate:
                    handle.truncate(max(1, size // 2))
                else:
                    handle.seek(max(0, size // 2))
                    byte = handle.read(1) or b"\x00"
                    handle.seek(max(0, size // 2))
                    handle.write(bytes([byte[0] ^ 0xFF]))
        except OSError:
            pass                     # entry already evicted


class FaultyLedger:
    """A :class:`RunLedger` whose appends can be torn mid-record.

    Mimics a crash between ``write`` and the newline hitting disk: the
    just-appended line is cut in half (then newline-terminated so only
    that one record is lost).  ``RunLedger.read`` must skip it with a
    warning, and resume must treat the spec as incomplete.
    """

    def __init__(self, ledger, injector):
        self._inner = ledger
        self._injector = injector

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def record(self, spec, **kwargs):
        entry = self._inner.record(spec, **kwargs)
        if self._injector.decide("ledger.torn", spec.key) is not None:
            self._tear_last_line()
        return entry

    def record_meta(self, kind, **payload):
        return self._inner.record_meta(kind, **payload)

    def _tear_last_line(self):
        path = self._inner.path
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return
        body = data.rstrip(b"\n")
        cut = body.rfind(b"\n") + 1          # start of the last record
        torn = body[cut:cut + max(1, (len(body) - cut) // 2)]
        with open(path, "wb") as handle:
            handle.write(data[:cut] + torn + b"\n")
