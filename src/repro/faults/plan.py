"""Fault plans: a seed plus per-site rules, serializable into the ledger.

A :class:`FaultPlan` fully determines a chaos run's fault schedule: it
is recorded as a ledger meta record before the sweep starts, so a
failing run can be replayed bit-identically from nothing but the ledger
(``FaultPlan.from_dict(record["plan"])``).
"""

from __future__ import annotations

#: Every injection site the engine exposes, with the degradation each
#: fault is expected to trigger (the DESIGN.md failure matrix in code).
KNOWN_SITES = (
    # Connection seams (applied to job-carrying frames on send):
    "conn.drop",        # frame vanishes -> lease timeout -> reassign
    "conn.delay",       # frame late by `param` seconds -> still correct
    "conn.truncate",    # partial frame + close -> peer ProtocolError
    "conn.corrupt",     # mangled payload -> peer ProtocolError, not bad data
    "conn.partition",   # one-way: all later sends vanish -> heartbeat death
    # Worker seams:
    "worker.crash-before-result",   # hard crash mid-job -> reassign
    "worker.crash-after-result",    # crash post-send -> result still lands
    "worker.stall",     # sleep `param` seconds -> lease timeout -> reassign
    # Persistence seams:
    "ledger.torn",      # append truncated mid-record -> reader skips it
    "cache.truncate",   # entry cut short -> checksum miss -> re-simulate
    "cache.corrupt",    # entry bit-flipped -> checksum miss -> re-simulate
)


class FaultRule:
    """One site's trigger: a probability, explicit occurrences, a knob.

    ``probability`` arms the content-keyed coin flip (see
    :meth:`FaultInjector.decide`); ``at`` additionally forces the fault
    at explicit 0-based occurrence indices of the site (deterministic
    single-worker unit tests); ``param`` is the site-specific knob
    (delay/stall seconds).
    """

    def __init__(self, site, probability=0.0, at=(), param=None):
        if site not in KNOWN_SITES:
            raise ValueError(f"unknown fault site {site!r} "
                             f"(known: {', '.join(KNOWN_SITES)})")
        probability = float(probability)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], "
                             f"got {probability}")
        self.site = site
        self.probability = probability
        self.at = tuple(int(index) for index in at)
        self.param = param

    def to_dict(self):
        payload = {"site": self.site, "probability": self.probability}
        if self.at:
            payload["at"] = list(self.at)
        if self.param is not None:
            payload["param"] = self.param
        return payload

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["site"], payload.get("probability", 0.0),
                   payload.get("at", ()), payload.get("param"))

    def __repr__(self):
        return (f"FaultRule({self.site!r}, p={self.probability}"
                + (f", at={list(self.at)}" if self.at else "")
                + (f", param={self.param}" if self.param is not None else "")
                + ")")


class FaultPlan:
    """A seed plus the rule list: the complete chaos-run schedule."""

    def __init__(self, seed, rules=()):
        self.seed = int(seed)
        self.rules = list(rules)

    def rules_for(self, site):
        return [rule for rule in self.rules if rule.site == site]

    def sites(self):
        return sorted({rule.site for rule in self.rules})

    def to_dict(self):
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["seed"],
                   [FaultRule.from_dict(rule)
                    for rule in payload.get("rules", ())])

    @classmethod
    def standard(cls, seed, stall_seconds=3.0, delay_seconds=0.2):
        """The default chaos matrix: every site armed at moderate odds.

        Probabilities are tuned so a handful of specs hit a meaningful
        mix of faults without one unlucky job exhausting a retry budget
        (each probabilistic fault fires at most once per job identity).
        """
        return cls(seed, [
            FaultRule("conn.drop", 0.25),
            FaultRule("conn.delay", 0.50, param=delay_seconds),
            FaultRule("conn.truncate", 0.25),
            FaultRule("conn.corrupt", 0.25),
            FaultRule("conn.partition", 0.15),
            FaultRule("worker.crash-before-result", 0.30),
            FaultRule("worker.crash-after-result", 0.30),
            FaultRule("worker.stall", 0.20, param=stall_seconds),
            FaultRule("ledger.torn", 0.35),
            FaultRule("cache.truncate", 0.35),
            FaultRule("cache.corrupt", 0.35),
        ])

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"
