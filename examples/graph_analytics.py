#!/usr/bin/env python3
"""Graph analytics study: every prefetching technique on the GAP kernels.

The paper's motivating domain.  Runs bc/bfs/cc/pr/sssp on a chosen graph
input under the baseline, PRE, IMP, VR, DVR and the Oracle, and prints a
Fig-7-style speedup table plus the branch/memory character of each kernel
(which explains *why* the techniques separate: the branchy worklist
kernels starve the out-of-order window, so only a decoupled prefetcher
keeps the memory system busy).

Usage::

    python examples/graph_analytics.py [--graph KR] [--instructions N]
"""

import argparse

from repro import SimConfig, hmean, make_workload, run_workload
from repro.config import ALL_TECHNIQUES
from repro.harness.report import format_table
from repro.workloads import GAP_WORKLOADS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--graph", default="KR")
    parser.add_argument("--instructions", type=int, default=12_000)
    args = parser.parse_args()

    config = SimConfig(max_instructions=args.instructions)
    techniques = [tech for tech in ALL_TECHNIQUES if tech != "ooo"]

    rows = []
    character_rows = []
    per_tech = {tech: [] for tech in techniques}
    for kernel in sorted(GAP_WORKLOADS):
        base = run_workload(make_workload(kernel, graph=args.graph),
                            config, technique="ooo")
        character_rows.append([
            f"{kernel}_{args.graph}", base.ipc, base.mlp,
            base.branch_mpki, base.demand_mpki,
            100.0 * base.rob_full_fraction])
        row = [f"{kernel}_{args.graph}"]
        for tech in techniques:
            metrics = run_workload(make_workload(kernel, graph=args.graph),
                                   config, technique=tech)
            speedup = metrics.speedup_over(base)
            per_tech[tech].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["H-mean"] + [hmean(per_tech[tech]) for tech in techniques])

    print(format_table(
        ["kernel", "IPC", "MLP", "br-MPKI", "mem-MPKI", "ROB-full %"],
        character_rows,
        title=f"Baseline character on the {args.graph} input"))
    print()
    print(format_table(["kernel"] + techniques, rows,
                       title="Speedup over the baseline OoO core"))
    print("\nReading guide: high branch-MPKI keeps the ROB from filling, "
          "so stall-triggered runahead (PRE/VR) rarely fires -- while "
          "DVR, decoupled from stalls, keeps prefetching (paper Fig 7).")


if __name__ == "__main__":
    main()
