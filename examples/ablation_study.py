#!/usr/bin/env python3
"""Ablation study: what each piece of DVR buys (paper Figs 8 and 12).

Part 1 reproduces the Fig 8 breakdown on a couple of workloads:
Vector Runahead, then "Offload" (a decoupled subthread triggered on any
detected stride -- no Discovery Mode), then "+Discovery" (loop bounds,
innermost-stride selection, divergence handling), then full DVR
(+Nested Runahead Mode).

Part 2 sweeps the ROB size to contrast Fig 2 and Fig 12: VR's gain needs
full-ROB stalls and fades on big cores; DVR's gain holds.

Usage::

    python examples/ablation_study.py [--instructions N]
"""

import argparse

from repro import SimConfig, make_workload, run_workload
from repro.config import DVR_BREAKDOWN
from repro.harness.report import format_table


def breakdown(config, workloads):
    rows = []
    for label, factory in workloads:
        base = run_workload(factory(), config, technique="ooo")
        row = [label]
        for tech in DVR_BREAKDOWN:
            metrics = run_workload(factory(), config, technique=tech)
            row.append(metrics.speedup_over(base))
        rows.append(row)
    return format_table(["workload"] + list(DVR_BREAKDOWN), rows,
                        title="Fig 8-style breakdown (speedup over OoO)")


def rob_sweep(config, factory, rob_sizes=(128, 224, 350, 512)):
    rows = []
    for rob in rob_sizes:
        base = run_workload(factory(),
                            config.with_technique("ooo").with_rob(rob))
        vr = run_workload(factory(),
                          config.with_technique("vr").with_rob(rob))
        dvr = run_workload(factory(),
                           config.with_technique("dvr").with_rob(rob))
        rows.append([rob, base.ipc, vr.speedup_over(base),
                     dvr.speedup_over(base),
                     100.0 * base.rob_full_fraction])
    return format_table(
        ["ROB", "base IPC", "VR speedup", "DVR speedup", "ROB-full %"],
        rows, title="Fig 2 / Fig 12 contrast: gain vs ROB size (kangaroo)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=10_000)
    args = parser.parse_args()
    config = SimConfig(max_instructions=args.instructions)

    workloads = [
        ("bfs_KR", lambda: make_workload("bfs", graph="KR")),
        ("bfs_UR", lambda: make_workload("bfs", graph="UR")),
        ("kangaroo", lambda: make_workload("kangaroo")),
    ]
    print(breakdown(config, workloads))
    print()
    # The ROB sweep is most telling on a kernel whose branches are
    # predictable enough to actually fill the ROB (the VR trigger).
    print(rob_sweep(config, lambda: make_workload("kangaroo")))
    print("\nReading guide: 'dvr-offload' decouples runahead from "
          "full-ROB stalls (Key Insights #1/#2); 'dvr-discovery' adds "
          "run-time loop bounds and divergence handling (#3/#5); 'dvr' "
          "completes the design with Nested Runahead Mode (#4).")


if __name__ == "__main__":
    main()
