#!/usr/bin/env python3
"""Quickstart: simulate BFS on a Kronecker graph with and without DVR.

Runs the baseline out-of-order core and the same core with the Decoupled
Vector Runahead engine, then prints the headline numbers the paper is
about: IPC, speedup, memory-level parallelism, and where the main thread
found DVR's prefetched lines.

Usage::

    python examples/quickstart.py [--instructions N] [--graph KR|UR|...]
"""

import argparse

from repro import SimConfig, make_workload, run_workload
from repro.config import CoreConfig, DvrConfig
from repro.core.hw_cost import hardware_budget, total_bytes
from repro.memsys.hierarchy import LEVELS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=20_000,
                        help="ROI length in committed instructions")
    parser.add_argument("--graph", default="KR",
                        help="graph input: KR, LJN, ORK, TW, UR")
    args = parser.parse_args()

    config = SimConfig(max_instructions=args.instructions)

    print(f"Simulating bfs_{args.graph} for {args.instructions:,} "
          "instructions...\n")
    baseline = run_workload(make_workload("bfs", graph=args.graph),
                            config, technique="ooo")
    dvr = run_workload(make_workload("bfs", graph=args.graph),
                       config, technique="dvr")

    print(f"{'metric':28s} {'baseline OoO':>14s} {'DVR':>14s}")
    print("-" * 58)
    print(f"{'IPC':28s} {baseline.ipc:14.3f} {dvr.ipc:14.3f}")
    print(f"{'cycles':28s} {baseline.cycles:14,d} {dvr.cycles:14,d}")
    print(f"{'MLP (MSHRs/cycle)':28s} {baseline.mlp:14.1f} {dvr.mlp:14.1f}")
    main_b, runahead_b = baseline.dram_split()
    main_d, runahead_d = dvr.dram_split()
    print(f"{'DRAM accesses (main thread)':28s} {main_b:14,d} {main_d:14,d}")
    print(f"{'DRAM accesses (runahead)':28s} {runahead_b:14,d} "
          f"{runahead_d:14,d}")
    print(f"\nDVR speedup: {dvr.speedup_over(baseline):.2f}x")

    stats = dvr.engine_stats
    print(f"\nDVR activity: {stats['dvr_spawns']} subthread invocations, "
          f"{stats['dvr_lane_loads']:,} lane loads, "
          f"{stats['dvr_divergences']} divergences, "
          f"{stats['dvr_ndm_entries']} nested-mode entries")

    fractions = dvr.timeliness_fractions("dvr")
    timeline = ", ".join(f"{level}: {fractions[level]:.0%}"
                         for level in LEVELS)
    print(f"Prefetched lines found in: {timeline}")

    print(f"\nDVR hardware overhead: "
          f"{total_bytes(DvrConfig(), CoreConfig())} bytes")
    for name, bits, nbytes in hardware_budget(DvrConfig(), CoreConfig()):
        print(f"  {name:26s} {nbytes:5d} B")


if __name__ == "__main__":
    main()
