#!/usr/bin/env python3
"""Database workload study: hash-join probing and hashed histogramming.

Runs the database-style hpc-db kernels (HJ2, HJ8, Camel, Kangaroo) under
the baseline, VR and DVR, and inspects the mechanisms: how often VR's
full-ROB trigger fires, how much commit time its delayed termination
costs, and how DVR's short-inner-loop handling (loop bounds + Nested
Discovery Mode) behaves on the 2-probe vs 8-probe join.

Usage::

    python examples/database_hashjoin.py [--instructions N]
"""

import argparse

from repro import SimConfig, make_workload, run_workload
from repro.harness.report import format_table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=12_000)
    args = parser.parse_args()

    config = SimConfig(max_instructions=args.instructions)
    rows = []
    mechanism_rows = []
    for name in ("hj2", "hj8", "camel", "kangaroo"):
        base = run_workload(make_workload(name), config, technique="ooo")
        vr = run_workload(make_workload(name), config, technique="vr")
        dvr = run_workload(make_workload(name), config, technique="dvr")
        rows.append([name, base.ipc, vr.speedup_over(base),
                     dvr.speedup_over(base),
                     100.0 * base.rob_full_fraction])
        mechanism_rows.append([
            name,
            vr.engine_stats.get("vr_intervals", 0),
            100.0 * vr.engine_stats.get("vr_delayed_termination_cycles", 0)
            / max(1, vr.cycles),
            dvr.engine_stats.get("dvr_spawns", 0),
            dvr.engine_stats.get("dvr_ndm_entries", 0),
            dvr.engine_stats.get("dvr_lane_loads", 0),
        ])

    print(format_table(
        ["kernel", "base IPC", "VR speedup", "DVR speedup", "ROB-full %"],
        rows, title="Database kernels: VR vs DVR"))
    print()
    print(format_table(
        ["kernel", "VR intervals", "VR delay %", "DVR spawns",
         "DVR NDM entries", "DVR lane loads"],
        mechanism_rows, title="Mechanism statistics"))
    print("\nReading guide: the predictable probe loops fill the ROB, so "
          "VR gets its trigger here (unlike the GAP kernels); the paper's "
          "delayed-termination cost shows up in 'VR delay %'. The probe "
          "loops contain no striding load of their own, so DVR "
          "vectorizes across keys (the outer loop), unrolling the probes "
          "inside each lane.")


if __name__ == "__main__":
    main()
