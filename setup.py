"""Shim for offline editable installs (`pip install -e . --no-build-isolation`
needs the `wheel` package, which is not available in this environment).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
